package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func collect(t *testing.T, s *Store) []string {
	t.Helper()
	var got []string
	if err := s.Replay(func(idx uint64, payload []byte) error {
		got = append(got, string(payload))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "", "gamma with spaces", strings.Repeat("z", 100_000)}
	for i, p := range want {
		idx, err := s.Append([]byte(p))
		if err != nil {
			t.Fatal(err)
		}
		if idx != uint64(i+1) {
			t.Fatalf("index = %d, want %d", idx, i+1)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := collect(t, s2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if s2.LastIndex() != uint64(len(want)) {
		t.Fatalf("LastIndex = %d, want %d", s2.LastIndex(), len(want))
	}
	// Appends continue with monotonic indices after reopen.
	idx, err := s2.Append([]byte("post-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != uint64(len(want)+1) {
		t.Fatalf("post-reopen index = %d, want %d", idx, len(want)+1)
	}
}

// A SyncTo-covered record must survive Crash(); records appended after
// the last sync may be lost but replay must still be an exact prefix.
func TestCrashLosesAtMostUnsyncedSuffix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var syncedIdx uint64
	for i := 0; i < 50; i++ {
		idx, err := s.Append([]byte(fmt.Sprintf("rec-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 29 {
			if err := s.SyncTo(idx); err != nil {
				t.Fatal(err)
			}
			syncedIdx = idx
		}
	}
	s.Crash()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := collect(t, s2)
	if uint64(len(got)) < syncedIdx {
		t.Fatalf("crash lost synced records: have %d, synced through %d", len(got), syncedIdx)
	}
	for i, p := range got {
		if want := fmt.Sprintf("rec-%03d", i); p != want {
			t.Fatalf("record %d = %q, want %q (prefix violated)", i, p, want)
		}
	}
}

// Power-loss model: truncate the WAL at a random byte offset. Replay
// must yield an exact prefix of what was appended — never a corrupt or
// reordered record — and a second truncation-free reopen must agree.
func TestTornTailTruncationProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, err := Open(dir, WithSegmentBytes(2048))
			if err != nil {
				t.Fatal(err)
			}
			n := 40 + rng.Intn(120)
			for i := 0; i < n; i++ {
				payload := []byte(fmt.Sprintf("seed%02d-rec-%04d-%s", seed, i,
					strings.Repeat("x", rng.Intn(200))))
				if _, err := s.Append(payload); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			s.Crash()

			// Tear the final segment at a random offset.
			segs, err := listSegments(dir)
			if err != nil || len(segs) == 0 {
				t.Fatalf("segments: %v (%d)", err, len(segs))
			}
			last := segs[len(segs)-1]
			fi, err := os.Stat(last.path)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() > 0 {
				cut := rng.Int63n(fi.Size())
				if err := os.Truncate(last.path, cut); err != nil {
					t.Fatal(err)
				}
			}

			s2, err := Open(dir, WithSegmentBytes(2048))
			if err != nil {
				t.Fatalf("reopen after tear: %v", err)
			}
			got := collect(t, s2)
			for i, p := range got {
				if !strings.HasPrefix(p, fmt.Sprintf("seed%02d-rec-%04d-", seed, i)) {
					t.Fatalf("record %d = %q: not the expected prefix record", i, p)
				}
			}
			if len(got) > n {
				t.Fatalf("replayed %d records, appended only %d", len(got), n)
			}
			// Appending after recovery and reopening again must keep the
			// sequence contiguous.
			if _, err := s2.Append([]byte("after-recovery")); err != nil {
				t.Fatal(err)
			}
			if err := s2.Sync(); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			s3, err := Open(dir, WithSegmentBytes(2048))
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			got3 := collect(t, s3)
			if len(got3) != len(got)+1 {
				t.Fatalf("after recovery append: %d records, want %d", len(got3), len(got)+1)
			}
			if got3[len(got3)-1] != "after-recovery" {
				t.Fatalf("last record = %q", got3[len(got3)-1])
			}
		})
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("pre-snap-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveSnapshot([]byte("state@100")); err != nil {
		t.Fatal(err)
	}
	// Compaction must have dropped covered segments.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) > 1 {
		t.Fatalf("compaction left %d segments", len(segs))
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("post-snap-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	idx, payload, ok := s2.Snapshot()
	if !ok || string(payload) != "state@100" || idx != 100 {
		t.Fatalf("snapshot = (%d, %q, %v)", idx, payload, ok)
	}
	got := collect(t, s2)
	if len(got) != 10 {
		t.Fatalf("replayed %d post-snapshot records, want 10", len(got))
	}
	for i, p := range got {
		if want := fmt.Sprintf("post-snap-%03d", i); p != want {
			t.Fatalf("record %d = %q, want %q", i, p, want)
		}
	}
	if s2.LastIndex() != 110 {
		t.Fatalf("LastIndex = %d, want 110", s2.LastIndex())
	}
}

// A corrupt newest snapshot must fall back to the older one, with the
// WAL tail re-read from the older boundary.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Append([]byte(fmt.Sprintf("a-%d", i)))
	}
	if err := s.SaveSnapshot([]byte("snap-A")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Append([]byte(fmt.Sprintf("b-%d", i)))
	}
	s.Sync()
	s.Close()

	// Forge a corrupt newer snapshot.
	bad := filepath.Join(dir, snapshotName(10))
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	idx, payload, ok := s2.Snapshot()
	if !ok || string(payload) != "snap-A" || idx != 5 {
		t.Fatalf("fallback snapshot = (%d, %q, %v), want (5, snap-A, true)", idx, payload, ok)
	}
	got := collect(t, s2)
	if len(got) != 5 || got[0] != "b-0" || got[4] != "b-4" {
		t.Fatalf("tail after fallback = %v", got)
	}
}

// Concurrent appenders with group-commit syncs: every committed index
// must replay after a crash.
func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithSegmentBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 50
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				idx, err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err == nil {
					err = s.SyncTo(idx)
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	s2, err := Open(dir, WithSegmentBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := collect(t, s2)
	if len(got) != workers*each {
		t.Fatalf("replayed %d records, want %d (every SyncTo had returned)", len(got), workers*each)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
}
