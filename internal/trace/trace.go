// Package trace provides scripted drive traces: time-stamped vehicle
// dynamics that tests, examples, and benchmarks replay through the
// virtual clock to produce deterministic situation-event sequences.
package trace

import (
	"time"

	"repro/internal/sds"
	"repro/internal/vehicle"
)

// Point is the vehicle state at one instant of a trace.
type Point struct {
	T        time.Duration // offset from trace start
	Speed    float64       // km/h
	AccelG   float64       // longitudinal acceleration magnitude, g
	Driver   bool          // driver-seat occupancy
	Ignition bool
	Lat, Lon float64
}

// Trace is a named sequence of points, ordered by T.
type Trace struct {
	Name   string
	Points []Point
}

// Apply writes a point into the dynamics state.
func Apply(p Point, dyn *vehicle.Dynamics) {
	dyn.SetSpeed(p.Speed)
	dyn.SetAccelG(p.AccelG)
	dyn.SetDriverPresent(p.Driver)
	dyn.SetIgnition(p.Ignition)
	dyn.SetPosition(p.Lat, p.Lon)
}

// Replay steps through the trace: for each point it applies the state,
// advances the virtual clock to the point's time, and polls the SDS.
// It returns every event the SDS transmitted, in order.
func Replay(tr Trace, clock *sds.VirtualClock, dyn *vehicle.Dynamics, svc *sds.Service) ([]string, error) {
	var events []string
	prev := time.Duration(0)
	for _, p := range tr.Points {
		if p.T > prev {
			clock.Advance(p.T - prev)
			prev = p.T
		}
		Apply(p, dyn)
		evs, err := svc.Poll()
		events = append(events, evs...)
		if err != nil {
			return events, err
		}
	}
	return events, nil
}

// CityDriveWithCrash models the paper's case study: the car accelerates
// through town, crashes at t=40s (8.5 g spike), and comes to rest.
func CityDriveWithCrash() Trace {
	return Trace{
		Name: "city-drive-with-crash",
		Points: []Point{
			{T: 0, Speed: 0, Driver: true, Ignition: false},
			{T: 2 * time.Second, Speed: 0, Driver: true, Ignition: true},
			{T: 5 * time.Second, Speed: 18, AccelG: 0.2, Driver: true, Ignition: true},
			{T: 15 * time.Second, Speed: 42, AccelG: 0.1, Driver: true, Ignition: true},
			{T: 30 * time.Second, Speed: 55, AccelG: 0.1, Driver: true, Ignition: true},
			{T: 40 * time.Second, Speed: 12, AccelG: 8.5, Driver: true, Ignition: true}, // impact
			{T: 41 * time.Second, Speed: 0, AccelG: 0.3, Driver: true, Ignition: true},
			{T: 45 * time.Second, Speed: 0, AccelG: 0.0, Driver: true, Ignition: true},
		},
	}
}

// HighwayDrive crosses the high-speed threshold twice: acceleration onto
// the highway and the exit back to city speeds (the Fig. 3(b) scenario).
func HighwayDrive() Trace {
	return Trace{
		Name: "highway-drive",
		Points: []Point{
			{T: 0, Speed: 0, Driver: true, Ignition: true},
			{T: 5 * time.Second, Speed: 45, AccelG: 0.2, Driver: true, Ignition: true},
			{T: 15 * time.Second, Speed: 95, AccelG: 0.2, Driver: true, Ignition: true},
			{T: 20 * time.Second, Speed: 120, AccelG: 0.1, Driver: true, Ignition: true},
			{T: 120 * time.Second, Speed: 125, AccelG: 0.0, Driver: true, Ignition: true},
			{T: 140 * time.Second, Speed: 70, AccelG: 0.3, Driver: true, Ignition: true},
			{T: 150 * time.Second, Speed: 40, AccelG: 0.2, Driver: true, Ignition: true},
		},
	}
}

// ParkAndLeave stops the car, switches the ignition off, and has the
// driver leave — exercising both parking states of Fig. 2.
func ParkAndLeave() Trace {
	return Trace{
		Name: "park-and-leave",
		Points: []Point{
			{T: 0, Speed: 30, Driver: true, Ignition: true},
			{T: 10 * time.Second, Speed: 0, Driver: true, Ignition: true},
			{T: 12 * time.Second, Speed: 0, Driver: true, Ignition: false},
			{T: 20 * time.Second, Speed: 0, Driver: false, Ignition: false},
		},
	}
}
