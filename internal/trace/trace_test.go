package trace

import (
	"testing"
	"time"

	"repro/internal/sds"
	"repro/internal/vehicle"
)

func replayWith(t *testing.T, tr Trace, detectors ...sds.Detector) []string {
	t.Helper()
	dyn := &vehicle.Dynamics{}
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	svc := sds.NewService(clock, sds.VehicleSensors(dyn), detectors,
		sds.TransmitterFunc(func([]string) error { return nil }))
	events, err := Replay(tr, clock, dyn, svc)
	if err != nil {
		t.Fatalf("Replay(%s): %v", tr.Name, err)
	}
	return events
}

func TestCityDriveWithCrashEvents(t *testing.T) {
	events := replayWith(t, CityDriveWithCrash(),
		sds.DrivingDetector(), sds.CrashDetector(8.0))
	want := []string{"driving_started", "crash_detected", "driving_stopped"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestHighwayDriveSpeedBand(t *testing.T) {
	events := replayWith(t, HighwayDrive(), sds.SpeedBandDetector(80))
	want := []string{"speed_high", "speed_low"}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("events = %v, want %v", events, want)
	}
}

func TestParkAndLeave(t *testing.T) {
	events := replayWith(t, ParkAndLeave(),
		sds.DrivingDetector(), sds.ParkingDetector())
	// driving (initially-true baseline), stop, park with driver, then
	// driver leaves.
	want := map[string]bool{
		"driving_started":       true,
		"driving_stopped":       true,
		"parked_with_driver":    true,
		"parked_without_driver": true,
	}
	for _, ev := range events {
		if !want[ev] {
			t.Fatalf("unexpected event %q in %v", ev, events)
		}
		delete(want, ev)
	}
	if len(want) != 0 {
		t.Fatalf("missing events %v (got %v)", want, events)
	}
}

func TestReplayAdvancesClock(t *testing.T) {
	dyn := &vehicle.Dynamics{}
	start := time.Unix(0, 0)
	clock := sds.NewVirtualClock(start)
	svc := sds.NewService(clock, sds.VehicleSensors(dyn), nil,
		sds.TransmitterFunc(func([]string) error { return nil }))
	tr := CityDriveWithCrash()
	if _, err := Replay(tr, clock, dyn, svc); err != nil {
		t.Fatal(err)
	}
	last := tr.Points[len(tr.Points)-1].T
	if got := clock.Now().Sub(start); got != last {
		t.Fatalf("clock advanced %v, want %v", got, last)
	}
}

func TestApply(t *testing.T) {
	dyn := &vehicle.Dynamics{}
	Apply(Point{Speed: 33, AccelG: 1.2, Driver: true, Ignition: true, Lat: 1, Lon: 2}, dyn)
	if dyn.Speed() != 33 || dyn.AccelG() != 1.2 || !dyn.DriverPresent() || !dyn.IgnitionOn() {
		t.Error("Apply incomplete")
	}
}

func TestTracesAreOrdered(t *testing.T) {
	for _, tr := range []Trace{CityDriveWithCrash(), HighwayDrive(), ParkAndLeave()} {
		for i := 1; i < len(tr.Points); i++ {
			if tr.Points[i].T < tr.Points[i-1].T {
				t.Errorf("%s: points out of order at %d", tr.Name, i)
			}
		}
	}
}
