package trace

import (
	"math/rand"
	"time"
)

// Generator produces random but physically plausible drive traces from a
// seed: speed follows a bounded random walk, ignition and occupancy
// change at stop phases, and crashes occur with a configurable
// probability per minute of driving. Deterministic per seed, so failing
// fuzz cases replay exactly.
type Generator struct {
	rng *rand.Rand

	// CrashPerMinute is the probability of a crash event per simulated
	// minute while moving (default 0.05).
	CrashPerMinute float64
	// MaxSpeed bounds the random walk (default 130 km/h).
	MaxSpeed float64
	// Step is the simulated time between points (default 1s).
	Step time.Duration
}

// NewGenerator creates a generator for the seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:            rand.New(rand.NewSource(seed)),
		CrashPerMinute: 0.05,
		MaxSpeed:       130,
		Step:           time.Second,
	}
}

// Generate produces a trace with n points.
func (g *Generator) Generate(n int) Trace {
	tr := Trace{Name: "generated"}
	speed := 0.0
	driver := true
	ignition := false
	crashed := false
	cooldown := 0 // points remaining at rest after a crash

	for i := 0; i < n; i++ {
		t := time.Duration(i) * g.Step
		accel := 0.0

		switch {
		case cooldown > 0:
			cooldown--
			speed = 0
			if cooldown == 0 {
				// Recovery: ignition cycles, vehicle restarts.
				ignition = false
				crashed = false
			}
		case crashed:
			speed = 0
			accel = 0
		case !ignition:
			// Parked. Occasionally the driver leaves/returns or starts.
			switch g.rng.Intn(6) {
			case 0:
				driver = !driver
			case 1, 2:
				if driver {
					ignition = true
				}
			}
		default:
			// Driving: bounded random walk.
			delta := (g.rng.Float64() - 0.45) * 15
			speed += delta
			if speed < 0 {
				speed = 0
			}
			if speed > g.MaxSpeed {
				speed = g.MaxSpeed
			}
			accel = delta / 9.8
			if accel < 0 {
				accel = -accel
			}
			// Crash chance while moving.
			perPoint := g.CrashPerMinute * g.Step.Minutes()
			if speed > 10 && g.rng.Float64() < perPoint {
				accel = 8 + g.rng.Float64()*4
				crashed = true
				cooldown = 3 + g.rng.Intn(5)
			}
			// Occasionally stop and park.
			if speed < 2 && g.rng.Intn(4) == 0 {
				speed = 0
				ignition = false
			}
		}

		tr.Points = append(tr.Points, Point{
			T:        t,
			Speed:    speed,
			AccelG:   accel,
			Driver:   driver,
			Ignition: ignition,
		})
	}
	return tr
}
