package lsm

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/sys"
	"repro/internal/vfs"
)

// recordingModule logs hook invocations and optionally denies.
type recordingModule struct {
	Base
	name  string
	deny  error // returned from every overridden hook when non-nil
	calls []string
	mu    sync.Mutex
}

func (m *recordingModule) Name() string { return m.name }

func (m *recordingModule) record(hook string) error {
	m.mu.Lock()
	m.calls = append(m.calls, hook)
	m.mu.Unlock()
	return m.deny
}

func (m *recordingModule) InodePermission(*sys.Cred, string, *vfs.Inode, sys.Access) error {
	return m.record("inode_permission")
}

func (m *recordingModule) FileOpen(*sys.Cred, *vfs.File) error { return m.record("file_open") }

func (m *recordingModule) FileIoctl(*sys.Cred, *vfs.File, uint64) error {
	return m.record("file_ioctl")
}

func (m *recordingModule) callLog() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.calls))
	copy(out, m.calls)
	return out
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	s := NewStack()
	if err := s.Register(&recordingModule{name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(&recordingModule{name: "a"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestStackOrderAndString(t *testing.T) {
	s := NewStack()
	s.Register(&recordingModule{name: "sack"})
	s.Register(&recordingModule{name: "apparmor"})
	s.Register(NewCapability())
	if got := s.String(); got != "sack,apparmor,capability" {
		t.Fatalf("stack order = %q", got)
	}
}

func TestFirstDenyWinsAndShortCircuits(t *testing.T) {
	first := &recordingModule{name: "first", deny: sys.EACCES}
	second := &recordingModule{name: "second"}
	s := NewStack()
	s.Register(first)
	s.Register(second)

	cred := sys.NewCred(0, 0)
	err := s.InodePermission(cred, "/x", nil, sys.MayRead)
	if !sys.IsErrno(err, sys.EACCES) {
		t.Fatalf("err = %v", err)
	}
	if len(second.callLog()) != 0 {
		t.Fatal("second module consulted after first denied (whitelist stacking broken)")
	}
	if s.Denials("first") != 1 || s.Denials("second") != 0 {
		t.Fatalf("denial counters = %d, %d", s.Denials("first"), s.Denials("second"))
	}
}

func TestAllModulesConsultedOnAllow(t *testing.T) {
	a := &recordingModule{name: "a"}
	b := &recordingModule{name: "b"}
	s := NewStack()
	s.Register(a)
	s.Register(b)
	cred := sys.NewCred(0, 0)
	if err := s.InodePermission(cred, "/x", nil, sys.MayRead); err != nil {
		t.Fatal(err)
	}
	if len(a.callLog()) != 1 || len(b.callLog()) != 1 {
		t.Fatal("not all modules consulted on allow")
	}
}

func TestSecondModuleDenies(t *testing.T) {
	a := &recordingModule{name: "a"}
	b := &recordingModule{name: "b", deny: sys.EPERM}
	s := NewStack()
	s.Register(a)
	s.Register(b)
	err := s.FileIoctl(sys.NewCred(0, 0), nil, 1)
	if !sys.IsErrno(err, sys.EPERM) {
		t.Fatalf("err = %v", err)
	}
	if s.Denials("b") != 1 {
		t.Fatal("denial not attributed to b")
	}
}

func TestEmptyStackAllowsEverything(t *testing.T) {
	s := NewStack()
	cred := sys.NewCred(1000, 1000)
	if err := s.InodePermission(cred, "/x", nil, sys.MayWrite); err != nil {
		t.Fatal(err)
	}
	if err := s.Capable(cred, sys.CapMacAdmin); err != nil {
		t.Fatal("empty stack should not enforce capabilities")
	}
}

func TestCapabilityModule(t *testing.T) {
	s := NewStack()
	s.Register(NewCapability())
	root := sys.NewCred(0, 0)
	user := sys.NewCred(1000, 1000)
	if err := s.Capable(root, sys.CapMacAdmin); err != nil {
		t.Errorf("root CAP_MAC_ADMIN: %v", err)
	}
	if err := s.Capable(user, sys.CapMacAdmin); !sys.IsErrno(err, sys.EPERM) {
		t.Errorf("user CAP_MAC_ADMIN: %v", err)
	}
	user.Caps = user.Caps.Add(sys.CapMacAdmin)
	if err := s.Capable(user, sys.CapMacAdmin); err != nil {
		t.Errorf("granted cap still denied: %v", err)
	}
}

// nopNamed is Base plus a name — the minimal valid module.
type nopNamed struct{ Base }

func (nopNamed) Name() string { return "nop" }

func TestMinimalModule(t *testing.T) {
	s := NewStack()
	if err := s.Register(nopNamed{}); err != nil {
		t.Fatal(err)
	}
	cred := sys.NewCred(0, 0)
	hooks := []error{
		s.TaskAlloc(cred, cred),
		s.BprmCheck(cred, "/bin/x", nil),
		s.Capable(cred, sys.CapChown),
		s.InodePermission(cred, "/x", nil, sys.MayRead),
		s.InodeCreate(cred, nil, "/x", 0),
		s.InodeUnlink(cred, nil, "/x", nil),
		s.InodeGetattr(cred, "/x", nil),
		s.FileOpen(cred, nil),
		s.FilePermission(cred, nil, sys.MayRead),
		s.FileIoctl(cred, nil, 0),
		s.MmapFile(cred, nil, sys.MayRead),
		s.SocketCreate(cred, 1, 1),
		s.SocketConnect(cred, "unix:/x"),
		s.SocketSendmsg(cred, "unix:/x", 10),
	}
	for i, err := range hooks {
		if err != nil {
			t.Errorf("hook %d denied by Base: %v", i, err)
		}
	}
}

func TestConcurrentHooksWithRegistration(t *testing.T) {
	s := NewStack()
	s.Register(&recordingModule{name: "m0"})
	cred := sys.NewCred(0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.InodePermission(cred, "/x", nil, sys.MayRead)
			}
		}()
	}
	for i := 1; i <= 8; i++ {
		s.Register(&recordingModule{name: fmt.Sprintf("m%d", i)})
	}
	wg.Wait()
	if got := len(s.Modules()); got != 9 {
		t.Fatalf("modules = %d", got)
	}
}

func TestAuditLogRing(t *testing.T) {
	l := NewAuditLog(3)
	for i := 0; i < 5; i++ {
		l.Append(AuditRecord{Module: "m", Op: fmt.Sprintf("op%d", i), Action: "DENIED"})
	}
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("retained = %d, want 3", len(recs))
	}
	if recs[0].Op != "op2" || recs[2].Op != "op4" {
		t.Fatalf("wrong retention window: %v", recs)
	}
	if recs[2].Seq != 5 {
		t.Fatalf("seq = %d, want 5", recs[2].Seq)
	}
	if len(l.Denials()) != 3 {
		t.Fatal("denials filter wrong")
	}
	l.Clear()
	if l.Len() != 0 {
		t.Fatal("clear failed")
	}
	l.Append(AuditRecord{Module: "m", Op: "after", Action: "ALLOWED"})
	if l.Records()[0].Seq != 6 {
		t.Fatal("sequence should continue after clear")
	}
}

func TestAuditRecordString(t *testing.T) {
	l := NewAuditLog(0)
	l.Append(AuditRecord{Module: "sack", Op: "file_ioctl", Subject: "radio", Object: "/dev/d", Action: "DENIED"})
	s := l.Records()[0].String()
	for _, frag := range []string{"sack", "file_ioctl", "radio", "/dev/d", "DENIED"} {
		if !strings.Contains(s, frag) {
			t.Errorf("record string %q missing %q", s, frag)
		}
	}
}

func TestAuditLogSinceCursor(t *testing.T) {
	l := NewAuditLog(4)
	if recs, next, missed := l.Since(0); recs != nil || next != 0 || missed != 0 {
		t.Fatalf("empty log Since = %v %d %d", recs, next, missed)
	}
	for i := 1; i <= 3; i++ {
		l.Append(AuditRecord{Module: "m", Op: fmt.Sprintf("op%d", i)})
	}
	recs, next, missed := l.Since(0)
	if len(recs) != 3 || missed != 0 || next != 3 {
		t.Fatalf("Since(0) = %d recs, next=%d, missed=%d", len(recs), next, missed)
	}
	if recs[0].Seq != 1 || recs[2].Seq != 3 {
		t.Fatalf("wrong seq window: %v", recs)
	}
	// Resume from the returned cursor: nothing new.
	if recs, _, _ := l.Since(next); len(recs) != 0 {
		t.Fatalf("resumed cursor returned %d records", len(recs))
	}
	// Overflow the ring: seqs 4..9, ring keeps 6..9, export from 3
	// misses 4 and 5.
	for i := 4; i <= 9; i++ {
		l.Append(AuditRecord{Module: "m", Op: fmt.Sprintf("op%d", i)})
	}
	recs, next, missed = l.Since(3)
	if len(recs) != 4 || next != 9 || missed != 2 {
		t.Fatalf("post-overflow Since(3) = %d recs, next=%d, missed=%d", len(recs), next, missed)
	}
	if recs[0].Seq != 6 || recs[3].Seq != 9 {
		t.Fatalf("wrong post-overflow window: %v", recs)
	}
	if l.Dropped() != 5 || l.Emitted() != 9 {
		t.Fatalf("dropped=%d emitted=%d, want 5, 9", l.Dropped(), l.Emitted())
	}
	// Ledger invariant: every record is either retained-or-exported or
	// counted dropped.
	if uint64(l.Len())+l.Dropped() != l.Emitted() {
		t.Fatalf("ledger broken: len=%d dropped=%d emitted=%d", l.Len(), l.Dropped(), l.Emitted())
	}
}

func TestAuditLogClearCountsDropped(t *testing.T) {
	l := NewAuditLog(8)
	for i := 0; i < 5; i++ {
		l.Append(AuditRecord{Module: "m"})
	}
	l.Clear()
	if l.Dropped() != 5 {
		t.Fatalf("dropped after clear = %d, want 5", l.Dropped())
	}
	l.Append(AuditRecord{Module: "m"})
	recs, _, missed := l.Since(0)
	if len(recs) != 1 || recs[0].Seq != 6 || missed != 5 {
		t.Fatalf("post-clear Since(0) = %v missed=%d", recs, missed)
	}
}
