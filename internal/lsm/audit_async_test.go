package lsm

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSeqAssignedAtInsertion is the satellite-4 ordering-bug-class
// test: with async emission, sequence numbers must be minted at ring
// insertion, be dense (1..emitted with no gaps), and unique — the
// properties fleet upload dedupe-by-sequence depends on. Concurrent
// appenders racing against concurrent flushes must not be able to
// produce a duplicate or a hole.
func TestSeqAssignedAtInsertion(t *testing.T) {
	l := NewAuditLog(100000)
	const goroutines, perG = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Append(AuditRecord{
					Module:  "sack",
					Op:      "inode_permission",
					Subject: fmt.Sprintf("task%d", g),
					Detail:  fmt.Sprintf("i%d", i),
				})
				if i%50 == 0 {
					l.Flush() // interleave drains with captures
				}
			}
		}(g)
	}
	wg.Wait()

	recs := l.Records()
	if len(recs) != goroutines*perG {
		t.Fatalf("retained %d records, want %d", len(recs), goroutines*perG)
	}
	if l.Emitted() != goroutines*perG {
		t.Fatalf("emitted %d, want %d", l.Emitted(), goroutines*perG)
	}
	seen := make(map[uint64]bool, len(recs))
	for i, r := range recs {
		if r.Seq == 0 {
			t.Fatalf("record %d has no sequence", i)
		}
		if seen[r.Seq] {
			t.Fatalf("duplicate sequence %d", r.Seq)
		}
		seen[r.Seq] = true
		if i > 0 && recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("ring order not dense: seq %d follows %d", recs[i].Seq, recs[i-1].Seq)
		}
	}
}

// TestPerGoroutineOrderPreserved: Flush's all-shards atomic cut plus the
// capture-order sort must keep each goroutine's records in the order it
// emitted them, even though consecutive records may land in different
// pending shards.
func TestPerGoroutineOrderPreserved(t *testing.T) {
	l := NewAuditLog(100000)
	const goroutines, perG = 8, 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Append(AuditRecord{Subject: fmt.Sprintf("g%d", g), Detail: fmt.Sprintf("%06d", i)})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { // concurrent drains trying to tear the cut
		for {
			select {
			case <-done:
				return
			default:
				l.Flush()
			}
		}
	}()
	wg.Wait()
	close(done)

	last := make(map[string]string)
	for _, r := range l.Records() {
		if prev, ok := last[r.Subject]; ok && r.Detail <= prev {
			t.Fatalf("goroutine %s order inverted: %s inserted after %s", r.Subject, r.Detail, prev)
		}
		last[r.Subject] = r.Detail
	}
}

// TestDedupeBySequenceUnderAsync simulates the fleet uploader: drain
// through Since while concurrent hooks append, dedupe by sequence, and
// require exactly-once delivery with an exact uploaded+missed==emitted
// ledger at the end.
func TestDedupeBySequenceUnderAsync(t *testing.T) {
	l := NewAuditLog(256) // small ring so overwrites (missed) happen too
	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			l.Append(AuditRecord{Detail: fmt.Sprintf("%d", i)})
		}
	}()

	seen := make(map[uint64]bool)
	var uploaded, missed uint64
	var cursor uint64
	drain := func() {
		recs, next, m := l.Since(cursor)
		for _, r := range recs {
			if seen[r.Seq] {
				t.Errorf("sequence %d delivered twice", r.Seq)
			}
			seen[r.Seq] = true
		}
		uploaded += uint64(len(recs))
		missed += m
		cursor = next
	}
	for i := 0; i < 50; i++ {
		drain()
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	drain() // final drain after all appends landed

	if got := uploaded + missed; got != l.Emitted() || l.Emitted() != total {
		t.Fatalf("ledger: uploaded(%d)+missed(%d)=%d, emitted=%d, want %d",
			uploaded, missed, uploaded+missed, l.Emitted(), total)
	}
}

// TestShardOverflowFlushesInline: appending far past the pending-shard
// capacity without ever reading must not lose records — full shards
// drain themselves.
func TestShardOverflowFlushesInline(t *testing.T) {
	l := NewAuditLog(100000)
	const n = DefaultPendingCap * 10
	for i := 0; i < n; i++ {
		l.Append(AuditRecord{Detail: "x"})
	}
	l.mu.Lock() // bypass flush-on-read: count what reached the ring unprompted
	inRing := l.n
	l.mu.Unlock()
	if inRing < n-DefaultPendingCap {
		t.Fatalf("only %d of %d records reached the ring; overflow did not flush", inRing, n)
	}
}

// TestStartFlusherDrains: a background flusher must move captured
// records into the ring without any read API being called.
func TestStartFlusherDrains(t *testing.T) {
	l := NewAuditLog(1000)
	stop := l.StartFlusher(time.Millisecond)
	defer stop()
	for i := 0; i < 10; i++ {
		l.Append(AuditRecord{Detail: "y"})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		l.mu.Lock()
		n := l.n
		l.mu.Unlock()
		if n == 10 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("flusher never drained the pending buffers")
}

// TestClearDropsPending: Clear must account pending records in the
// dropped ledger, not leak them.
func TestClearDropsPending(t *testing.T) {
	l := NewAuditLog(100)
	for i := 0; i < 7; i++ {
		l.Append(AuditRecord{})
	}
	l.Clear()
	if l.Dropped() != 7 || l.Len() != 0 {
		t.Fatalf("after Clear: dropped=%d len=%d, want 7, 0", l.Dropped(), l.Len())
	}
	if l.Emitted() != 7 {
		t.Fatalf("emitted=%d, want 7 (sequence space keeps going)", l.Emitted())
	}
}

// TestRegisterAfterFreeze: satellite 1 — registration after boot is an
// explicit error, not a silent data race.
func TestRegisterAfterFreeze(t *testing.T) {
	s := NewStack()
	if err := s.Register(nullModule{"first"}); err != nil {
		t.Fatalf("pre-freeze Register: %v", err)
	}
	s.Freeze()
	if !s.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	if err := s.Register(nullModule{"late"}); err != ErrStackFrozen {
		t.Fatalf("post-freeze Register = %v, want ErrStackFrozen", err)
	}
	if got := s.Modules(); len(got) != 1 || got[0] != "first" {
		t.Fatalf("modules = %v, want [first]", got)
	}
}

type nullModule struct{ name string }

func (m nullModule) Name() string { return m.name }
