package lsm

import (
	"repro/internal/sys"
)

// Capability is the always-present minor LSM that implements POSIX
// capability checking, like the kernel's security/commoncap.c. It is
// registered last in the stack so that MAC modules run first. It
// implements only the CapableChecker capability, so the stack never
// consults it on file or socket hooks.
type Capability struct{}

// NewCapability returns the capability module.
func NewCapability() *Capability { return &Capability{} }

// Name implements Module.
func (*Capability) Name() string { return "capability" }

// Capable allows a capability only when the credential holds it.
func (*Capability) Capable(cred *sys.Cred, c sys.Cap) error {
	if cred.HasCap(c) {
		return nil
	}
	return sys.EPERM
}
