package lsm

import (
	"fmt"
	"sync"
	"time"
)

// AuditRecord is one security-relevant event, in the spirit of the
// kernel's audit subsystem. Security modules append records through an
// AuditLog they share; tests and the demo binaries read them back.
type AuditRecord struct {
	Seq     uint64
	When    time.Time
	Module  string // which LSM produced the record
	Op      string // hook name ("file_ioctl", "inode_permission", ...)
	Subject string // task identity (comm or profile label)
	Object  string // target path or address
	Action  string // "ALLOWED" or "DENIED"
	Detail  string // free-form context (state name, matched rule, ...)
}

// String renders the record in a dmesg-like single line.
func (r AuditRecord) String() string {
	return fmt.Sprintf("audit[%d] %s %s op=%s subject=%q object=%q %s %s",
		r.Seq, r.Module, r.Action, r.Op, r.Subject, r.Object, r.Detail,
		r.When.Format(time.RFC3339Nano))
}

// AuditLog is a bounded in-memory ring of audit records.
type AuditLog struct {
	mu      sync.Mutex
	seq     uint64
	records []AuditRecord
	max     int
}

// NewAuditLog creates a log retaining at most max records (0 means a
// default of 4096).
func NewAuditLog(max int) *AuditLog {
	if max <= 0 {
		max = 4096
	}
	return &AuditLog{max: max}
}

// Append records an event, trimming the oldest entries beyond the cap.
func (l *AuditLog) Append(r AuditRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	r.Seq = l.seq
	if r.When.IsZero() {
		r.When = time.Now()
	}
	l.records = append(l.records, r)
	if len(l.records) > l.max {
		l.records = l.records[len(l.records)-l.max:]
	}
}

// Records returns a copy of the retained records, oldest first.
func (l *AuditLog) Records() []AuditRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]AuditRecord, len(l.records))
	copy(out, l.records)
	return out
}

// Denials returns only the DENIED records.
func (l *AuditLog) Denials() []AuditRecord {
	var out []AuditRecord
	for _, r := range l.Records() {
		if r.Action == "DENIED" {
			out = append(out, r)
		}
	}
	return out
}

// Len reports the number of retained records.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Clear discards all retained records (the sequence counter keeps going).
func (l *AuditLog) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = nil
}
