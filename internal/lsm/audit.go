package lsm

import (
	"fmt"
	"sync"
	"time"
)

// AuditRecord is one security-relevant event, in the spirit of the
// kernel's audit subsystem. Security modules append records through an
// AuditLog they share; tests and the demo binaries read them back.
type AuditRecord struct {
	Seq     uint64
	When    time.Time
	Module  string // which LSM produced the record
	Op      string // hook name ("file_ioctl", "inode_permission", ...)
	Subject string // task identity (comm or profile label)
	Object  string // target path or address
	Action  string // "ALLOWED" or "DENIED"
	Detail  string // free-form context (state name, matched rule, ...)
}

// String renders the record in a dmesg-like single line.
func (r AuditRecord) String() string {
	return fmt.Sprintf("audit[%d] %s %s op=%s subject=%q object=%q %s %s",
		r.Seq, r.Module, r.Action, r.Op, r.Subject, r.Object, r.Detail,
		r.When.Format(time.RFC3339Nano))
}

// AuditLog is a bounded in-memory ring of audit records with a
// monotonic cursor for incremental export. The sequence number assigned
// at Append time is the cursor space: Seq of the newest record ==
// total records ever emitted, so `uploaded + dropped == emitted` stays
// an exact ledger for any exporter that drains through Since. Appends
// are O(1): once the ring is full the oldest record is overwritten in
// place and counted dropped, never shifted.
type AuditLog struct {
	mu      sync.Mutex
	seq     uint64        // last assigned sequence == records ever emitted
	buf     []AuditRecord // ring storage; grows to max then wraps
	start   int           // index of the oldest retained record
	n       int           // retained record count
	dropped uint64        // records lost before export (overwrite or Clear)
	max     int
}

// NewAuditLog creates a log retaining at most max records (0 means a
// default of 4096).
func NewAuditLog(max int) *AuditLog {
	if max <= 0 {
		max = 4096
	}
	return &AuditLog{max: max}
}

// Append records an event. When the ring is full the oldest record is
// overwritten and the dropped counter advances — growth is bounded no
// matter how long a chaos run appends.
func (l *AuditLog) Append(r AuditRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	r.Seq = l.seq
	if r.When.IsZero() {
		r.When = time.Now()
	}
	if len(l.buf) < l.max {
		l.buf = append(l.buf, r)
		l.n++
		return
	}
	if l.n < l.max {
		l.buf[(l.start+l.n)%l.max] = r
		l.n++
		return
	}
	l.buf[l.start] = r
	l.start = (l.start + 1) % l.max
	l.dropped++
}

// Records returns a copy of the retained records, oldest first.
func (l *AuditLog) Records() []AuditRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.copyLocked()
}

func (l *AuditLog) copyLocked() []AuditRecord {
	out := make([]AuditRecord, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}

// Since returns the retained records with sequence numbers strictly
// greater than cursor (oldest first), the new cursor to resume from,
// and how many records after cursor were lost to the ring before they
// could be read. It is the incremental export surface the fleet
// agent's decision-log shipper drains: repeatedly calling Since with
// the returned cursor observes every record exactly once, with losses
// accounted instead of silent.
func (l *AuditLog) Since(cursor uint64) (recs []AuditRecord, next uint64, missed uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	next = l.seq
	if cursor >= l.seq {
		return nil, next, 0
	}
	oldest := l.seq - uint64(l.n) + 1 // seq of the oldest retained record
	if l.n == 0 {
		oldest = l.seq + 1
	}
	if cursor+1 < oldest {
		missed = oldest - cursor - 1
	}
	for i := 0; i < l.n; i++ {
		r := l.buf[(l.start+i)%len(l.buf)]
		if r.Seq > cursor {
			recs = append(recs, r)
		}
	}
	return recs, next, missed
}

// Cursor returns the sequence number of the newest record (0 before the
// first Append) — the position an exporter starting "from now" resumes
// from.
func (l *AuditLog) Cursor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Emitted reports how many records were ever appended.
func (l *AuditLog) Emitted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped reports how many records were lost before export — ring
// overwrites plus explicit Clears.
func (l *AuditLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Denials returns only the DENIED records.
func (l *AuditLog) Denials() []AuditRecord {
	var out []AuditRecord
	for _, r := range l.Records() {
		if r.Action == "DENIED" {
			out = append(out, r)
		}
	}
	return out
}

// Len reports the number of retained records.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Clear discards all retained records (the sequence counter keeps
// going, and the discarded records count as dropped so export ledgers
// stay exact).
func (l *AuditLog) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropped += uint64(l.n)
	l.buf = nil
	l.start, l.n = 0, 0
}
