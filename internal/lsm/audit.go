package lsm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/shard"
)

// AuditRecord is one security-relevant event, in the spirit of the
// kernel's audit subsystem. Security modules append records through an
// AuditLog they share; tests and the demo binaries read them back.
type AuditRecord struct {
	Seq     uint64
	When    time.Time
	Module  string // which LSM produced the record
	Op      string // hook name ("file_ioctl", "inode_permission", ...)
	Subject string // task identity (comm or profile label)
	Object  string // target path or address
	Action  string // "ALLOWED" or "DENIED"
	Detail  string // free-form context (state name, matched rule, ...)
}

// String renders the record in a dmesg-like single line.
func (r AuditRecord) String() string {
	return fmt.Sprintf("audit[%d] %s %s op=%s subject=%q object=%q %s %s",
		r.Seq, r.Module, r.Action, r.Op, r.Subject, r.Object, r.Detail,
		r.When.Format(time.RFC3339Nano))
}

// Pending-buffer capacity bounds. DefaultPendingCap bounds one per-slot
// pending buffer: a hook that fills its shard triggers an inline flush —
// emission is asynchronous on the happy path but can never lose a
// record, so `uploaded + dropped == emitted` stays exact for the fleet
// agent and chaos suites. SetPendingCap tunes it within
// [MinPendingCap, MaxPendingCap]: smaller caps bound staleness and
// per-shard memory, larger caps amortise flushes for bursty hooks.
const (
	DefaultPendingCap = 64
	MinPendingCap     = 1
	MaxPendingCap     = 1 << 16
)

// pendingRec is a captured-but-not-yet-inserted record. The order token
// is a global atomic counter stamped at capture time; the flusher sorts
// by it so per-goroutine causal order survives into the ring even when
// consecutive records from one goroutine land in different shards.
type pendingRec struct {
	order uint64
	rec   AuditRecord
}

// auditShard is one slot's pending buffer. Hooks on different slots
// append under different mutexes, so audit emission no longer serialises
// every concurrent hook on one ring lock.
type auditShard struct {
	mu      sync.Mutex
	pending []pendingRec
	_       [32]byte // keep neighbouring shard mutexes off one cache line
}

// AuditLog is a bounded in-memory ring of audit records with a
// monotonic cursor for incremental export.
//
// Emission is two-stage: Append captures the record into a per-slot
// pending buffer (cheap, contention-free across slots) and Flush drains
// every buffer into the ring, where the monotonic Seq is assigned — at
// ring insertion, not at hook time. That placement is what keeps
// dedupe-by-sequence correct for the fleet uploader: Seq of the newest
// record == total records ever inserted, so `uploaded + dropped ==
// emitted` is an exact ledger for any exporter draining through Since.
//
// Every read API flushes first, so single-threaded callers observe the
// synchronous semantics the rest of the test suite was written against.
// A background drain is available via StartFlusher; a shard that fills
// up flushes inline, so records are delayed but never lost.
//
// Flush takes an atomic cut: it locks all shards before reading any.
// If record B (appended after A by the same goroutine) is in the cut,
// A's Append had already completed — and since landing in a shard needs
// that shard's lock, A is in the cut too. Sorting the cut by capture
// order then yields per-goroutine causal order in the ring.
//
// Appends to the ring are O(1): once full, the oldest record is
// overwritten in place and counted dropped, never shifted.
type AuditLog struct {
	capture    atomic.Uint64 // capture-order tokens, stamped at Append
	pendingCap atomic.Int64  // per-shard pending-buffer bound (inline-flush trigger)
	shards     []auditShard

	flushMu sync.Mutex // serialises drains; lock order: flushMu > shard.mu > mu

	mu      sync.Mutex
	seq     uint64        // last assigned sequence == records ever inserted
	buf     []AuditRecord // ring storage; grows to max then wraps
	start   int           // index of the oldest retained record
	n       int           // retained record count
	dropped uint64        // records lost before export (overwrite or Clear)
	max     int
}

// NewAuditLog creates a log retaining at most max records (0 means a
// default of 4096).
func NewAuditLog(max int) *AuditLog {
	if max <= 0 {
		max = 4096
	}
	l := &AuditLog{max: max, shards: make([]auditShard, shard.Slots())}
	l.pendingCap.Store(DefaultPendingCap)
	return l
}

// SetPendingCap bounds each per-slot pending buffer at n records: an
// Append that reaches the bound flushes inline. n outside
// [MinPendingCap, MaxPendingCap] is rejected, leaving the current cap
// in place. Safe to call concurrently with Appends; the new bound
// applies from the next Append.
func (l *AuditLog) SetPendingCap(n int) error {
	if n < MinPendingCap || n > MaxPendingCap {
		return fmt.Errorf("lsm: pending cap %d out of range [%d, %d]", n, MinPendingCap, MaxPendingCap)
	}
	l.pendingCap.Store(int64(n))
	return nil
}

// PendingCap reports the per-slot pending-buffer bound.
func (l *AuditLog) PendingCap() int { return int(l.pendingCap.Load()) }

// Append captures an event into the calling slot's pending buffer. The
// record's Seq is NOT assigned here — sequence numbers are minted at
// ring insertion (see Flush) so they are monotonic in insertion order
// even when concurrent hooks capture out of order. When is stamped now,
// preserving the event's wall-clock time across the async hand-off.
func (l *AuditLog) Append(r AuditRecord) {
	if r.When.IsZero() {
		r.When = time.Now()
	}
	p := pendingRec{order: l.capture.Add(1), rec: r}
	s := &l.shards[shard.Slot()]
	s.mu.Lock()
	s.pending = append(s.pending, p)
	full := len(s.pending) >= int(l.pendingCap.Load())
	s.mu.Unlock()
	if full {
		l.Flush()
	}
}

// Flush drains every pending buffer into the ring, assigning sequence
// numbers in capture order. Safe to call concurrently with Appends and
// other Flushes; see the AuditLog doc comment for the ordering argument.
func (l *AuditLog) Flush() {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	// Atomic cut: hold every shard lock while collecting.
	var batch []pendingRec
	for i := range l.shards {
		l.shards[i].mu.Lock()
	}
	for i := range l.shards {
		s := &l.shards[i]
		batch = append(batch, s.pending...)
		s.pending = s.pending[:0]
	}
	for i := range l.shards {
		l.shards[i].mu.Unlock()
	}
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].order < batch[j].order })

	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range batch {
		l.insertLocked(batch[i].rec)
	}
}

// insertLocked assigns the next sequence number and places the record in
// the ring. Caller holds l.mu.
func (l *AuditLog) insertLocked(r AuditRecord) {
	l.seq++
	r.Seq = l.seq
	if len(l.buf) < l.max {
		l.buf = append(l.buf, r)
		l.n++
		return
	}
	if l.n < l.max {
		l.buf[(l.start+l.n)%l.max] = r
		l.n++
		return
	}
	l.buf[l.start] = r
	l.start = (l.start + 1) % l.max
	l.dropped++
}

// StartFlusher launches a background goroutine draining the pending
// buffers every interval (0 means 5ms). The returned stop function
// halts the goroutine and performs a final drain. Optional: reads flush
// on demand and full shards flush inline, so the flusher only bounds
// staleness, never correctness.
func (l *AuditLog) StartFlusher(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				l.Flush()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			l.Flush()
		})
	}
}

// Records returns a copy of the retained records, oldest first.
func (l *AuditLog) Records() []AuditRecord {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.copyLocked()
}

func (l *AuditLog) copyLocked() []AuditRecord {
	out := make([]AuditRecord, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.buf[(l.start+i)%len(l.buf)]
	}
	return out
}

// Since returns the retained records with sequence numbers strictly
// greater than cursor (oldest first), the new cursor to resume from,
// and how many records after cursor were lost to the ring before they
// could be read. It is the incremental export surface the fleet
// agent's decision-log shipper drains: repeatedly calling Since with
// the returned cursor observes every record exactly once, with losses
// accounted instead of silent.
func (l *AuditLog) Since(cursor uint64) (recs []AuditRecord, next uint64, missed uint64) {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	next = l.seq
	if cursor >= l.seq {
		return nil, next, 0
	}
	oldest := l.seq - uint64(l.n) + 1 // seq of the oldest retained record
	if l.n == 0 {
		oldest = l.seq + 1
	}
	if cursor+1 < oldest {
		missed = oldest - cursor - 1
	}
	for i := 0; i < l.n; i++ {
		r := l.buf[(l.start+i)%len(l.buf)]
		if r.Seq > cursor {
			recs = append(recs, r)
		}
	}
	return recs, next, missed
}

// Cursor returns the sequence number of the newest record (0 before the
// first Append) — the position an exporter starting "from now" resumes
// from.
func (l *AuditLog) Cursor() uint64 {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Emitted reports how many records were ever appended.
func (l *AuditLog) Emitted() uint64 {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped reports how many records were lost before export — ring
// overwrites plus explicit Clears.
func (l *AuditLog) Dropped() uint64 {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Denials returns only the DENIED records.
func (l *AuditLog) Denials() []AuditRecord {
	var out []AuditRecord
	for _, r := range l.Records() {
		if r.Action == "DENIED" {
			out = append(out, r)
		}
	}
	return out
}

// Len reports the number of retained records.
func (l *AuditLog) Len() int {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Clear discards all retained records, pending ones included (the
// sequence counter keeps going, and the discarded records count as
// dropped so export ledgers stay exact).
func (l *AuditLog) Clear() {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropped += uint64(l.n)
	l.buf = nil
	l.start, l.n = 0, 0
}
