package lsm

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/shard"
)

// HookID identifies one LSM hook for metrics attribution.
type HookID int

// Hook identifiers, in the order the Module interface used to declare
// them. NumHooks bounds the metrics arrays.
const (
	HookTaskAlloc HookID = iota
	HookBprmCheck
	HookCapable
	HookInodePermission
	HookInodeCreate
	HookInodeUnlink
	HookInodeGetattr
	HookFileOpen
	HookFilePermission
	HookFileIoctl
	HookMmapFile
	HookSocketCreate
	HookSocketConnect
	HookSocketSendmsg
	NumHooks
)

var hookNames = [NumHooks]string{
	"task_alloc",
	"bprm_check",
	"capable",
	"inode_permission",
	"inode_create",
	"inode_unlink",
	"inode_getattr",
	"file_open",
	"file_permission",
	"file_ioctl",
	"mmap_file",
	"socket_create",
	"socket_connect",
	"socket_sendmsg",
}

// String names the hook like the kernel's security_* entry points.
func (h HookID) String() string {
	if h < 0 || h >= NumHooks {
		return fmt.Sprintf("hook(%d)", int(h))
	}
	return hookNames[h]
}

// latencyBuckets is the histogram resolution: bucket i counts samples
// with latency < 2^i ns, the last bucket absorbing everything slower
// (2^27 ns ≈ 134 ms, far beyond any simulated hook).
const latencyBuckets = 28

// hookMetrics holds one hook's counters. All fields are atomics so the
// hot path never takes a lock.
type hookMetrics struct {
	calls   atomic.Uint64
	denials atomic.Uint64
	totalNs atomic.Uint64
	buckets [latencyBuckets]atomic.Uint64
}

// metricsShard is one slot's private copy of every hook's counters.
// Concurrent hooks on different slots update disjoint shards, so the
// counter cache lines stop bouncing between CPUs; Snapshot folds the
// shards, and because every Observe lands in exactly one shard the
// folded totals are exact.
type metricsShard struct {
	hooks [NumHooks]hookMetrics
}

// Metrics aggregates per-hook call counts, denial counts, and latency
// histograms for one Stack — the observability layer behind
// /sys/kernel/security/sack/metrics.
type Metrics struct {
	shards []metricsShard
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{shards: make([]metricsShard, shard.Slots())}
}

// bucketFor maps a latency to its histogram bucket: index of the highest
// set bit, clamped to the last bucket.
func bucketFor(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= latencyBuckets {
		b = latencyBuckets - 1
	}
	return b
}

// Observe records one completed hook invocation.
func (m *Metrics) Observe(h HookID, d time.Duration, denied bool) {
	hm := &m.shards[shard.Slot()].hooks[h]
	hm.calls.Add(1)
	if denied {
		hm.denials.Add(1)
	}
	ns := d.Nanoseconds()
	hm.totalNs.Add(uint64(ns))
	hm.buckets[bucketFor(ns)].Add(1)
}

// HookStat is a point-in-time snapshot of one hook's metrics.
type HookStat struct {
	Hook    HookID
	Calls   uint64
	Denials uint64
	TotalNs uint64
	Buckets [latencyBuckets]uint64
}

// AvgNs is the mean hook latency in nanoseconds.
func (s HookStat) AvgNs() uint64 {
	if s.Calls == 0 {
		return 0
	}
	return s.TotalNs / s.Calls
}

// Quantile returns an upper bound (the bucket ceiling) for the q-th
// latency quantile, q in [0,1].
func (s HookStat) Quantile(q float64) uint64 {
	if s.Calls == 0 {
		return 0
	}
	target := uint64(q * float64(s.Calls))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if seen >= target {
			return uint64(1) << uint(i) // bucket i holds samples < 2^i ns
		}
	}
	return uint64(1) << (latencyBuckets - 1)
}

// Snapshot returns the stats of every hook that has been called at least
// once, in hook order.
func (m *Metrics) Snapshot() []HookStat {
	var out []HookStat
	for h := HookID(0); h < NumHooks; h++ {
		st := HookStat{Hook: h}
		for s := range m.shards {
			hm := &m.shards[s].hooks[h]
			st.Calls += hm.calls.Load()
			st.Denials += hm.denials.Load()
			st.TotalNs += hm.totalNs.Load()
			for i := range st.Buckets {
				st.Buckets[i] += hm.buckets[i].Load()
			}
		}
		if st.Calls == 0 {
			continue
		}
		out = append(out, st)
	}
	return out
}

// Render formats the snapshot in the flat key=value style of the other
// securityfs stats files, one hook per line.
func (m *Metrics) Render() string {
	var b strings.Builder
	for _, st := range m.Snapshot() {
		fmt.Fprintf(&b, "hook %-16s calls=%d denials=%d avg_ns=%d p50_ns<=%d p99_ns<=%d\n",
			st.Hook, st.Calls, st.Denials, st.AvgNs(), st.Quantile(0.50), st.Quantile(0.99))
	}
	return b.String()
}
