// Package lsm implements the simulated Linux Security Module framework:
// the hook interface security modules implement, and the ordered stack
// that consults them. Semantics follow the kernel's whitelist stacking
// model used by the paper (CONFIG_LSM="SACK,AppArmor,..."): modules are
// called in registration order and the first non-nil error denies the
// operation, so a later module is only consulted when every earlier one
// allowed the access.
package lsm

import (
	"repro/internal/sys"
	"repro/internal/vfs"
)

// Module is the full hook surface a security module may implement. Embed
// Base to get allow-everything defaults and override only the hooks the
// module cares about, mirroring how kernel LSMs register a sparse
// security_hook_list.
type Module interface {
	// Name identifies the module ("capability", "apparmor", "sack").
	Name() string

	// --- task hooks ---

	// TaskAlloc runs at fork; the module may install a blob on child.
	TaskAlloc(parent, child *sys.Cred) error
	// BprmCheck runs at exec time, before the program image replaces the
	// task. Path is the executable path; node its inode.
	BprmCheck(cred *sys.Cred, path string, node *vfs.Inode) error
	// Capable gates capability use (security_capable).
	Capable(cred *sys.Cred, c sys.Cap) error

	// --- inode hooks ---

	// InodePermission checks a path-based access request.
	InodePermission(cred *sys.Cred, path string, node *vfs.Inode, mask sys.Access) error
	// InodeCreate gates creating a new object named path inside dir.
	InodeCreate(cred *sys.Cred, dir *vfs.Inode, path string, mode vfs.Mode) error
	// InodeUnlink gates removing the object at path.
	InodeUnlink(cred *sys.Cred, dir *vfs.Inode, path string, node *vfs.Inode) error
	// InodeGetattr gates stat(2) on the object at path.
	InodeGetattr(cred *sys.Cred, path string, node *vfs.Inode) error

	// --- file hooks ---

	// FileOpen runs once per successful path resolution at open time.
	FileOpen(cred *sys.Cred, f *vfs.File) error
	// FilePermission runs on every read/write through an open file.
	FilePermission(cred *sys.Cred, f *vfs.File, mask sys.Access) error
	// FileIoctl gates device-control calls.
	FileIoctl(cred *sys.Cred, f *vfs.File, cmd uint64) error
	// MmapFile gates memory-mapping a file with the given protections.
	MmapFile(cred *sys.Cred, f *vfs.File, prot sys.Access) error

	// --- IPC / network hooks ---

	// SocketCreate gates socket(2).
	SocketCreate(cred *sys.Cred, family, typ int) error
	// SocketConnect gates connect(2) to addr.
	SocketConnect(cred *sys.Cred, addr string) error
	// SocketSendmsg gates each send on a connected socket.
	SocketSendmsg(cred *sys.Cred, addr string, n int) error
}

// Base provides allow-everything defaults for every hook. Security
// modules embed it and override selectively.
type Base struct{}

// TaskAlloc allows by default.
func (Base) TaskAlloc(parent, child *sys.Cred) error { return nil }

// BprmCheck allows by default.
func (Base) BprmCheck(cred *sys.Cred, path string, node *vfs.Inode) error { return nil }

// Capable allows by default (the capability module overrides this).
func (Base) Capable(cred *sys.Cred, c sys.Cap) error { return nil }

// InodePermission allows by default.
func (Base) InodePermission(cred *sys.Cred, path string, node *vfs.Inode, mask sys.Access) error {
	return nil
}

// InodeCreate allows by default.
func (Base) InodeCreate(cred *sys.Cred, dir *vfs.Inode, path string, mode vfs.Mode) error {
	return nil
}

// InodeUnlink allows by default.
func (Base) InodeUnlink(cred *sys.Cred, dir *vfs.Inode, path string, node *vfs.Inode) error {
	return nil
}

// InodeGetattr allows by default.
func (Base) InodeGetattr(cred *sys.Cred, path string, node *vfs.Inode) error { return nil }

// FileOpen allows by default.
func (Base) FileOpen(cred *sys.Cred, f *vfs.File) error { return nil }

// FilePermission allows by default.
func (Base) FilePermission(cred *sys.Cred, f *vfs.File, mask sys.Access) error { return nil }

// FileIoctl allows by default.
func (Base) FileIoctl(cred *sys.Cred, f *vfs.File, cmd uint64) error { return nil }

// MmapFile allows by default.
func (Base) MmapFile(cred *sys.Cred, f *vfs.File, prot sys.Access) error { return nil }

// SocketCreate allows by default.
func (Base) SocketCreate(cred *sys.Cred, family, typ int) error { return nil }

// SocketConnect allows by default.
func (Base) SocketConnect(cred *sys.Cred, addr string) error { return nil }

// SocketSendmsg allows by default.
func (Base) SocketSendmsg(cred *sys.Cred, addr string, n int) error { return nil }
