// Package lsm implements the simulated Linux Security Module framework:
// the hook interfaces security modules implement, and the ordered stack
// that consults them. Semantics follow the kernel's whitelist stacking
// model used by the paper (CONFIG_LSM="SACK,AppArmor,..."): modules are
// called in registration order and the first non-nil error denies the
// operation, so a later module is only consulted when every earlier one
// allowed the access.
//
// # Hook interface layout
//
// A module declares itself with the one-method Module interface (Name)
// and then opts into exactly the hooks it mediates by implementing the
// per-hook capability interfaces below (FileChecker, InodeChecker,
// SocketChecker, ...). Register type-asserts each interface once and
// files the module into per-hook dispatch slices, mirroring how kernel
// LSMs attach a sparse security_hook_list to security_hook_heads. The
// hot loop therefore only ever calls modules that really implement a
// hook — there are no dead no-op stub calls.
//
// Base remains as an embeddable allow-everything stub for tests and
// prototypes. Note that embedding Base makes the module satisfy *every*
// hook interface, so it is registered in every dispatch slice;
// production modules should instead implement just the interfaces they
// need.
package lsm

import (
	"repro/internal/sys"
	"repro/internal/vfs"
)

// Module is the minimal registration surface: every security module has
// a name ("capability", "apparmor", "sack"); everything else is opt-in
// through the per-hook capability interfaces.
type Module interface {
	Name() string
}

// --- task hooks ---

// TaskAllocator runs at fork; the module may install a blob on child.
type TaskAllocator interface {
	TaskAlloc(parent, child *sys.Cred) error
}

// BprmChecker runs at exec time, before the program image replaces the
// task. Path is the executable path; node its inode.
type BprmChecker interface {
	BprmCheck(cred *sys.Cred, path string, node *vfs.Inode) error
}

// CapableChecker gates capability use (security_capable).
type CapableChecker interface {
	Capable(cred *sys.Cred, c sys.Cap) error
}

// --- inode hooks ---

// InodeChecker checks a path-based access request (inode_permission).
type InodeChecker interface {
	InodePermission(cred *sys.Cred, path string, node *vfs.Inode, mask sys.Access) error
}

// InodeCreateChecker gates creating a new object named path inside dir.
type InodeCreateChecker interface {
	InodeCreate(cred *sys.Cred, dir *vfs.Inode, path string, mode vfs.Mode) error
}

// InodeUnlinkChecker gates removing the object at path.
type InodeUnlinkChecker interface {
	InodeUnlink(cred *sys.Cred, dir *vfs.Inode, path string, node *vfs.Inode) error
}

// InodeGetattrChecker gates stat(2) on the object at path.
type InodeGetattrChecker interface {
	InodeGetattr(cred *sys.Cred, path string, node *vfs.Inode) error
}

// --- file hooks ---

// FileOpenChecker runs once per successful path resolution at open time.
type FileOpenChecker interface {
	FileOpen(cred *sys.Cred, f *vfs.File) error
}

// FileChecker runs on every read/write through an open file
// (file_permission) — the hook revalidation-on-transition depends on.
type FileChecker interface {
	FilePermission(cred *sys.Cred, f *vfs.File, mask sys.Access) error
}

// FileIoctlChecker gates device-control calls.
type FileIoctlChecker interface {
	FileIoctl(cred *sys.Cred, f *vfs.File, cmd uint64) error
}

// MmapChecker gates memory-mapping a file with the given protections.
type MmapChecker interface {
	MmapFile(cred *sys.Cred, f *vfs.File, prot sys.Access) error
}

// --- IPC / network hooks ---

// SocketChecker mediates socket activity: socket(2) creation, connect,
// and each send on a connected socket. The three hooks come as one
// capability because a network-mediating module wants all of them.
type SocketChecker interface {
	SocketCreate(cred *sys.Cred, family, typ int) error
	SocketConnect(cred *sys.Cred, addr string) error
	SocketSendmsg(cred *sys.Cred, addr string, n int) error
}

// Base provides allow-everything defaults for every hook. Embedding it
// satisfies every capability interface, which registers the module in
// every dispatch slice — convenient for tests, wasteful for production
// modules (implement only the interfaces you need instead).
type Base struct{}

// TaskAlloc allows by default.
func (Base) TaskAlloc(parent, child *sys.Cred) error { return nil }

// BprmCheck allows by default.
func (Base) BprmCheck(cred *sys.Cred, path string, node *vfs.Inode) error { return nil }

// Capable allows by default (the capability module overrides this).
func (Base) Capable(cred *sys.Cred, c sys.Cap) error { return nil }

// InodePermission allows by default.
func (Base) InodePermission(cred *sys.Cred, path string, node *vfs.Inode, mask sys.Access) error {
	return nil
}

// InodeCreate allows by default.
func (Base) InodeCreate(cred *sys.Cred, dir *vfs.Inode, path string, mode vfs.Mode) error {
	return nil
}

// InodeUnlink allows by default.
func (Base) InodeUnlink(cred *sys.Cred, dir *vfs.Inode, path string, node *vfs.Inode) error {
	return nil
}

// InodeGetattr allows by default.
func (Base) InodeGetattr(cred *sys.Cred, path string, node *vfs.Inode) error { return nil }

// FileOpen allows by default.
func (Base) FileOpen(cred *sys.Cred, f *vfs.File) error { return nil }

// FilePermission allows by default.
func (Base) FilePermission(cred *sys.Cred, f *vfs.File, mask sys.Access) error { return nil }

// FileIoctl allows by default.
func (Base) FileIoctl(cred *sys.Cred, f *vfs.File, cmd uint64) error { return nil }

// MmapFile allows by default.
func (Base) MmapFile(cred *sys.Cred, f *vfs.File, prot sys.Access) error { return nil }

// SocketCreate allows by default.
func (Base) SocketCreate(cred *sys.Cred, family, typ int) error { return nil }

// SocketConnect allows by default.
func (Base) SocketConnect(cred *sys.Cred, addr string) error { return nil }

// SocketSendmsg allows by default.
func (Base) SocketSendmsg(cred *sys.Cred, addr string, n int) error { return nil }
