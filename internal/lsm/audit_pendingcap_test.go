package lsm

import "testing"

// TestSetPendingCapBounds: the cap accepts exactly [MinPendingCap,
// MaxPendingCap] and rejects everything else without disturbing the
// current value.
func TestSetPendingCapBounds(t *testing.T) {
	l := NewAuditLog(0)
	if got := l.PendingCap(); got != DefaultPendingCap {
		t.Fatalf("default pending cap = %d, want %d", got, DefaultPendingCap)
	}
	for _, bad := range []int{0, -1, MinPendingCap - 1, MaxPendingCap + 1, 1 << 30} {
		if err := l.SetPendingCap(bad); err == nil {
			t.Fatalf("SetPendingCap(%d) accepted an out-of-range cap", bad)
		}
		if got := l.PendingCap(); got != DefaultPendingCap {
			t.Fatalf("rejected SetPendingCap(%d) changed the cap to %d", bad, got)
		}
	}
	for _, good := range []int{MinPendingCap, 8, DefaultPendingCap, MaxPendingCap} {
		if err := l.SetPendingCap(good); err != nil {
			t.Fatalf("SetPendingCap(%d): %v", good, err)
		}
		if got := l.PendingCap(); got != good {
			t.Fatalf("pending cap = %d after SetPendingCap(%d)", got, good)
		}
	}
}

// TestSetPendingCapTriggersEarlierFlush: with the cap at its minimum,
// every Append reaches the ring without any read or background flusher.
func TestSetPendingCapTriggersEarlierFlush(t *testing.T) {
	l := NewAuditLog(1000)
	if err := l.SetPendingCap(MinPendingCap); err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		l.Append(AuditRecord{Detail: "z"})
	}
	l.mu.Lock() // bypass flush-on-read: count what reached the ring unprompted
	inRing := l.n
	l.mu.Unlock()
	if inRing != n {
		t.Fatalf("%d of %d records reached the ring; cap=1 should flush every append", inRing, n)
	}
}
