package lsm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sys"
	"repro/internal/vfs"
)

// ErrStackFrozen is returned by Register after Freeze: module
// registration is a boot-time operation, and the frozen dispatch table
// is what lets the hook fast path skip locking entirely.
var ErrStackFrozen = errors.New("lsm: stack frozen, registration is boot-time only")

// hookEntry pairs a module's hook implementation with its name, so a
// denial can be attributed without calling back into the module.
type hookEntry[T any] struct {
	name string
	h    T
}

// hookTable is an immutable snapshot of the per-hook dispatch slices —
// the simulated security_hook_heads. Register builds a new table and
// swaps it in atomically; the hook fast path reads it with one atomic
// load and then only touches modules that actually implement the hook.
type hookTable struct {
	modules []Module

	taskAlloc    []hookEntry[TaskAllocator]
	bprmCheck    []hookEntry[BprmChecker]
	capable      []hookEntry[CapableChecker]
	inodePerm    []hookEntry[InodeChecker]
	inodeCreate  []hookEntry[InodeCreateChecker]
	inodeUnlink  []hookEntry[InodeUnlinkChecker]
	inodeGetattr []hookEntry[InodeGetattrChecker]
	fileOpen     []hookEntry[FileOpenChecker]
	filePerm     []hookEntry[FileChecker]
	fileIoctl    []hookEntry[FileIoctlChecker]
	mmapFile     []hookEntry[MmapChecker]
	socket       []hookEntry[SocketChecker]
}

// clone deep-copies the dispatch slices so a new registration never
// mutates a table concurrent hook calls may be walking.
func (t *hookTable) clone() *hookTable {
	n := &hookTable{}
	n.modules = append([]Module(nil), t.modules...)
	n.taskAlloc = append([]hookEntry[TaskAllocator](nil), t.taskAlloc...)
	n.bprmCheck = append([]hookEntry[BprmChecker](nil), t.bprmCheck...)
	n.capable = append([]hookEntry[CapableChecker](nil), t.capable...)
	n.inodePerm = append([]hookEntry[InodeChecker](nil), t.inodePerm...)
	n.inodeCreate = append([]hookEntry[InodeCreateChecker](nil), t.inodeCreate...)
	n.inodeUnlink = append([]hookEntry[InodeUnlinkChecker](nil), t.inodeUnlink...)
	n.inodeGetattr = append([]hookEntry[InodeGetattrChecker](nil), t.inodeGetattr...)
	n.fileOpen = append([]hookEntry[FileOpenChecker](nil), t.fileOpen...)
	n.filePerm = append([]hookEntry[FileChecker](nil), t.filePerm...)
	n.fileIoctl = append([]hookEntry[FileIoctlChecker](nil), t.fileIoctl...)
	n.mmapFile = append([]hookEntry[MmapChecker](nil), t.mmapFile...)
	n.socket = append([]hookEntry[SocketChecker](nil), t.socket...)
	return n
}

// add files a module into the dispatch slice of every hook interface it
// implements. Called once per module at registration — this is the
// single point where capability type assertions happen.
func (t *hookTable) add(m Module) {
	t.modules = append(t.modules, m)
	name := m.Name()
	if h, ok := m.(TaskAllocator); ok {
		t.taskAlloc = append(t.taskAlloc, hookEntry[TaskAllocator]{name, h})
	}
	if h, ok := m.(BprmChecker); ok {
		t.bprmCheck = append(t.bprmCheck, hookEntry[BprmChecker]{name, h})
	}
	if h, ok := m.(CapableChecker); ok {
		t.capable = append(t.capable, hookEntry[CapableChecker]{name, h})
	}
	if h, ok := m.(InodeChecker); ok {
		t.inodePerm = append(t.inodePerm, hookEntry[InodeChecker]{name, h})
	}
	if h, ok := m.(InodeCreateChecker); ok {
		t.inodeCreate = append(t.inodeCreate, hookEntry[InodeCreateChecker]{name, h})
	}
	if h, ok := m.(InodeUnlinkChecker); ok {
		t.inodeUnlink = append(t.inodeUnlink, hookEntry[InodeUnlinkChecker]{name, h})
	}
	if h, ok := m.(InodeGetattrChecker); ok {
		t.inodeGetattr = append(t.inodeGetattr, hookEntry[InodeGetattrChecker]{name, h})
	}
	if h, ok := m.(FileOpenChecker); ok {
		t.fileOpen = append(t.fileOpen, hookEntry[FileOpenChecker]{name, h})
	}
	if h, ok := m.(FileChecker); ok {
		t.filePerm = append(t.filePerm, hookEntry[FileChecker]{name, h})
	}
	if h, ok := m.(FileIoctlChecker); ok {
		t.fileIoctl = append(t.fileIoctl, hookEntry[FileIoctlChecker]{name, h})
	}
	if h, ok := m.(MmapChecker); ok {
		t.mmapFile = append(t.mmapFile, hookEntry[MmapChecker]{name, h})
	}
	if h, ok := m.(SocketChecker); ok {
		t.socket = append(t.socket, hookEntry[SocketChecker]{name, h})
	}
}

// Stack is the ordered list of registered security modules — the
// simulated equivalent of the kernel's security_hook_heads populated from
// CONFIG_LSM. Registration happens at "boot" (before syscalls run);
// the hook fast path reads the dispatch table through an atomic pointer
// so checks never contend on a lock.
type Stack struct {
	mu     sync.Mutex
	table  atomic.Pointer[hookTable]
	frozen atomic.Bool

	// metrics collects per-hook call counts and latency histograms.
	metrics *Metrics

	// Denials counts hook rejections per module, for audit and tests.
	denials sync.Map // string -> *atomic.Uint64
}

// NewStack returns an empty module stack.
func NewStack() *Stack {
	s := &Stack{metrics: NewMetrics()}
	s.table.Store(&hookTable{})
	return s
}

// Register appends a module to the stack. The order of registration is
// the order of consultation (whitelist stacking: first module checked
// first, first deny wins). The module is type-asserted once, here, into
// the dispatch slice of every hook interface it implements.
func (s *Stack) Register(m Module) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen.Load() {
		return ErrStackFrozen
	}
	cur := s.table.Load()
	for _, existing := range cur.modules {
		if existing.Name() == m.Name() {
			return fmt.Errorf("lsm: module %q already registered", m.Name())
		}
	}
	next := cur.clone()
	next.add(m)
	s.table.Store(next)
	return nil
}

// Freeze seals the stack: subsequent Register calls fail with
// ErrStackFrozen. The kernel calls this at the end of boot — the same
// point where real LSM hook heads become __ro_after_init — which makes
// "registration after boot isn't supported" an enforced contract rather
// than a convention.
func (s *Stack) Freeze() { s.frozen.Store(true) }

// Frozen reports whether the stack has been sealed.
func (s *Stack) Frozen() bool { return s.frozen.Load() }

// Modules returns the registered module names in consultation order,
// matching the format of /sys/kernel/security/lsm.
func (s *Stack) Modules() []string {
	cur := s.table.Load()
	names := make([]string, len(cur.modules))
	for i, m := range cur.modules {
		names[i] = m.Name()
	}
	return names
}

// String renders the stack like CONFIG_LSM ("sack,apparmor,capability").
func (s *Stack) String() string { return strings.Join(s.Modules(), ",") }

// ModuleList returns the registered module instances in consultation
// order, for callers that need more than names — e.g. the metrics file
// asking each module for its access vector cache counters.
func (s *Stack) ModuleList() []Module {
	cur := s.table.Load()
	return append([]Module(nil), cur.modules...)
}

// Registered reports, in consultation order, the modules wired into the
// given hook's dispatch slice — introspection for tests and the metrics
// file.
func (s *Stack) Registered(h HookID) []string {
	t := s.table.Load()
	collect := func(names []string, n string) []string { return append(names, n) }
	var out []string
	switch h {
	case HookTaskAlloc:
		for _, e := range t.taskAlloc {
			out = collect(out, e.name)
		}
	case HookBprmCheck:
		for _, e := range t.bprmCheck {
			out = collect(out, e.name)
		}
	case HookCapable:
		for _, e := range t.capable {
			out = collect(out, e.name)
		}
	case HookInodePermission:
		for _, e := range t.inodePerm {
			out = collect(out, e.name)
		}
	case HookInodeCreate:
		for _, e := range t.inodeCreate {
			out = collect(out, e.name)
		}
	case HookInodeUnlink:
		for _, e := range t.inodeUnlink {
			out = collect(out, e.name)
		}
	case HookInodeGetattr:
		for _, e := range t.inodeGetattr {
			out = collect(out, e.name)
		}
	case HookFileOpen:
		for _, e := range t.fileOpen {
			out = collect(out, e.name)
		}
	case HookFilePermission:
		for _, e := range t.filePerm {
			out = collect(out, e.name)
		}
	case HookFileIoctl:
		for _, e := range t.fileIoctl {
			out = collect(out, e.name)
		}
	case HookMmapFile:
		for _, e := range t.mmapFile {
			out = collect(out, e.name)
		}
	case HookSocketCreate, HookSocketConnect, HookSocketSendmsg:
		for _, e := range t.socket {
			out = collect(out, e.name)
		}
	}
	return out
}

// Metrics exposes the stack's hook metrics sink.
func (s *Stack) Metrics() *Metrics { return s.metrics }

// Denials reports how many hook calls the named module has denied.
func (s *Stack) Denials(module string) uint64 {
	if v, ok := s.denials.Load(module); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

func (s *Stack) countDenial(module string) {
	v, _ := s.denials.LoadOrStore(module, new(atomic.Uint64))
	v.(*atomic.Uint64).Add(1)
}

// Each hook method below walks its dispatch slice in order and returns
// the first error. The loops are written out per hook (rather than
// through a generic closure) to keep the fast path free of allocations;
// each wraps its walk in a latency observation for the metrics layer.

// TaskAlloc invokes the fork hook chain.
func (s *Stack) TaskAlloc(parent, child *sys.Cred) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().taskAlloc {
		if err = e.h.TaskAlloc(parent, child); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookTaskAlloc, time.Since(start), err != nil)
	return err
}

// BprmCheck invokes the exec hook chain.
func (s *Stack) BprmCheck(cred *sys.Cred, path string, node *vfs.Inode) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().bprmCheck {
		if err = e.h.BprmCheck(cred, path, node); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookBprmCheck, time.Since(start), err != nil)
	return err
}

// Capable invokes the capability hook chain.
func (s *Stack) Capable(cred *sys.Cred, c sys.Cap) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().capable {
		if err = e.h.Capable(cred, c); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookCapable, time.Since(start), err != nil)
	return err
}

// InodePermission invokes the path-access hook chain.
func (s *Stack) InodePermission(cred *sys.Cred, path string, node *vfs.Inode, mask sys.Access) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().inodePerm {
		if err = e.h.InodePermission(cred, path, node, mask); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookInodePermission, time.Since(start), err != nil)
	return err
}

// InodeCreate invokes the create hook chain.
func (s *Stack) InodeCreate(cred *sys.Cred, dir *vfs.Inode, path string, mode vfs.Mode) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().inodeCreate {
		if err = e.h.InodeCreate(cred, dir, path, mode); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookInodeCreate, time.Since(start), err != nil)
	return err
}

// InodeUnlink invokes the unlink hook chain.
func (s *Stack) InodeUnlink(cred *sys.Cred, dir *vfs.Inode, path string, node *vfs.Inode) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().inodeUnlink {
		if err = e.h.InodeUnlink(cred, dir, path, node); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookInodeUnlink, time.Since(start), err != nil)
	return err
}

// InodeGetattr invokes the stat hook chain.
func (s *Stack) InodeGetattr(cred *sys.Cred, path string, node *vfs.Inode) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().inodeGetattr {
		if err = e.h.InodeGetattr(cred, path, node); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookInodeGetattr, time.Since(start), err != nil)
	return err
}

// FileOpen invokes the open hook chain.
func (s *Stack) FileOpen(cred *sys.Cred, f *vfs.File) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().fileOpen {
		if err = e.h.FileOpen(cred, f); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookFileOpen, time.Since(start), err != nil)
	return err
}

// FilePermission invokes the per-I/O hook chain.
func (s *Stack) FilePermission(cred *sys.Cred, f *vfs.File, mask sys.Access) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().filePerm {
		if err = e.h.FilePermission(cred, f, mask); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookFilePermission, time.Since(start), err != nil)
	return err
}

// FileIoctl invokes the ioctl hook chain.
func (s *Stack) FileIoctl(cred *sys.Cred, f *vfs.File, cmd uint64) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().fileIoctl {
		if err = e.h.FileIoctl(cred, f, cmd); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookFileIoctl, time.Since(start), err != nil)
	return err
}

// MmapFile invokes the mmap hook chain.
func (s *Stack) MmapFile(cred *sys.Cred, f *vfs.File, prot sys.Access) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().mmapFile {
		if err = e.h.MmapFile(cred, f, prot); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookMmapFile, time.Since(start), err != nil)
	return err
}

// SocketCreate invokes the socket-creation hook chain.
func (s *Stack) SocketCreate(cred *sys.Cred, family, typ int) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().socket {
		if err = e.h.SocketCreate(cred, family, typ); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookSocketCreate, time.Since(start), err != nil)
	return err
}

// SocketConnect invokes the connect hook chain.
func (s *Stack) SocketConnect(cred *sys.Cred, addr string) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().socket {
		if err = e.h.SocketConnect(cred, addr); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookSocketConnect, time.Since(start), err != nil)
	return err
}

// SocketSendmsg invokes the sendmsg hook chain.
func (s *Stack) SocketSendmsg(cred *sys.Cred, addr string, n int) error {
	start := time.Now()
	var err error
	for _, e := range s.table.Load().socket {
		if err = e.h.SocketSendmsg(cred, addr, n); err != nil {
			s.countDenial(e.name)
			break
		}
	}
	s.metrics.Observe(HookSocketSendmsg, time.Since(start), err != nil)
	return err
}
