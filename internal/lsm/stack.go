package lsm

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sys"
	"repro/internal/vfs"
)

// Stack is the ordered list of registered security modules — the
// simulated equivalent of the kernel's security_hook_heads populated from
// CONFIG_LSM. Registration happens at "boot" (before syscalls run);
// the hook fast path reads the module slice through an atomic pointer so
// checks never contend on a lock.
type Stack struct {
	mu      sync.Mutex
	modules atomic.Pointer[[]Module]

	// Denials counts hook rejections per module, for audit and tests.
	denials sync.Map // string -> *atomic.Uint64
}

// NewStack returns an empty module stack.
func NewStack() *Stack {
	s := &Stack{}
	empty := []Module{}
	s.modules.Store(&empty)
	return s
}

// Register appends a module to the stack. The order of registration is
// the order of consultation (whitelist stacking: first module checked
// first, first deny wins).
func (s *Stack) Register(m Module) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.modules.Load()
	for _, existing := range cur {
		if existing.Name() == m.Name() {
			return fmt.Errorf("lsm: module %q already registered", m.Name())
		}
	}
	next := make([]Module, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = m
	s.modules.Store(&next)
	return nil
}

// Modules returns the registered module names in consultation order,
// matching the format of /sys/kernel/security/lsm.
func (s *Stack) Modules() []string {
	cur := *s.modules.Load()
	names := make([]string, len(cur))
	for i, m := range cur {
		names[i] = m.Name()
	}
	return names
}

// String renders the stack like CONFIG_LSM ("sack,apparmor,capability").
func (s *Stack) String() string { return strings.Join(s.Modules(), ",") }

// Denials reports how many hook calls the named module has denied.
func (s *Stack) Denials(module string) uint64 {
	if v, ok := s.denials.Load(module); ok {
		return v.(*atomic.Uint64).Load()
	}
	return 0
}

func (s *Stack) countDenial(module string) {
	v, _ := s.denials.LoadOrStore(module, new(atomic.Uint64))
	v.(*atomic.Uint64).Add(1)
}

// Each hook method below walks the module list in order and returns the
// first error. The loops are written out per hook (rather than through a
// generic closure) to keep the fast path free of allocations.

// TaskAlloc invokes the fork hook chain.
func (s *Stack) TaskAlloc(parent, child *sys.Cred) error {
	for _, m := range *s.modules.Load() {
		if err := m.TaskAlloc(parent, child); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// BprmCheck invokes the exec hook chain.
func (s *Stack) BprmCheck(cred *sys.Cred, path string, node *vfs.Inode) error {
	for _, m := range *s.modules.Load() {
		if err := m.BprmCheck(cred, path, node); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// Capable invokes the capability hook chain.
func (s *Stack) Capable(cred *sys.Cred, c sys.Cap) error {
	for _, m := range *s.modules.Load() {
		if err := m.Capable(cred, c); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// InodePermission invokes the path-access hook chain.
func (s *Stack) InodePermission(cred *sys.Cred, path string, node *vfs.Inode, mask sys.Access) error {
	for _, m := range *s.modules.Load() {
		if err := m.InodePermission(cred, path, node, mask); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// InodeCreate invokes the create hook chain.
func (s *Stack) InodeCreate(cred *sys.Cred, dir *vfs.Inode, path string, mode vfs.Mode) error {
	for _, m := range *s.modules.Load() {
		if err := m.InodeCreate(cred, dir, path, mode); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// InodeUnlink invokes the unlink hook chain.
func (s *Stack) InodeUnlink(cred *sys.Cred, dir *vfs.Inode, path string, node *vfs.Inode) error {
	for _, m := range *s.modules.Load() {
		if err := m.InodeUnlink(cred, dir, path, node); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// InodeGetattr invokes the stat hook chain.
func (s *Stack) InodeGetattr(cred *sys.Cred, path string, node *vfs.Inode) error {
	for _, m := range *s.modules.Load() {
		if err := m.InodeGetattr(cred, path, node); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// FileOpen invokes the open hook chain.
func (s *Stack) FileOpen(cred *sys.Cred, f *vfs.File) error {
	for _, m := range *s.modules.Load() {
		if err := m.FileOpen(cred, f); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// FilePermission invokes the per-I/O hook chain.
func (s *Stack) FilePermission(cred *sys.Cred, f *vfs.File, mask sys.Access) error {
	for _, m := range *s.modules.Load() {
		if err := m.FilePermission(cred, f, mask); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// FileIoctl invokes the ioctl hook chain.
func (s *Stack) FileIoctl(cred *sys.Cred, f *vfs.File, cmd uint64) error {
	for _, m := range *s.modules.Load() {
		if err := m.FileIoctl(cred, f, cmd); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// MmapFile invokes the mmap hook chain.
func (s *Stack) MmapFile(cred *sys.Cred, f *vfs.File, prot sys.Access) error {
	for _, m := range *s.modules.Load() {
		if err := m.MmapFile(cred, f, prot); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// SocketCreate invokes the socket-creation hook chain.
func (s *Stack) SocketCreate(cred *sys.Cred, family, typ int) error {
	for _, m := range *s.modules.Load() {
		if err := m.SocketCreate(cred, family, typ); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// SocketConnect invokes the connect hook chain.
func (s *Stack) SocketConnect(cred *sys.Cred, addr string) error {
	for _, m := range *s.modules.Load() {
		if err := m.SocketConnect(cred, addr); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}

// SocketSendmsg invokes the sendmsg hook chain.
func (s *Stack) SocketSendmsg(cred *sys.Cred, addr string, n int) error {
	for _, m := range *s.modules.Load() {
		if err := m.SocketSendmsg(cred, addr, n); err != nil {
			s.countDenial(m.Name())
			return err
		}
	}
	return nil
}
