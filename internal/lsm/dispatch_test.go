package lsm

// dispatch_test pins the capability-interface redesign: modules land only
// in the dispatch slices of hooks they implement, Base-embedding modules
// land everywhere, and the metrics layer observes every walked hook.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sys"
)

// capableOnly implements exactly one capability interface, no Base.
type capableOnly struct{}

func (capableOnly) Name() string                     { return "capable-only" }
func (capableOnly) Capable(*sys.Cred, sys.Cap) error { return nil }

func TestSparseModuleRegistersOnlyItsHooks(t *testing.T) {
	s := NewStack()
	if err := s.Register(capableOnly{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Registered(HookCapable); len(got) != 1 || got[0] != "capable-only" {
		t.Fatalf("capable slice = %v", got)
	}
	for h := HookID(0); h < NumHooks; h++ {
		if h == HookCapable {
			continue
		}
		if got := s.Registered(h); len(got) != 0 {
			t.Errorf("hook %s has unexpected entries %v", h, got)
		}
	}
}

func TestCapabilityModuleIsSparse(t *testing.T) {
	s := NewStack()
	if err := s.Register(NewCapability()); err != nil {
		t.Fatal(err)
	}
	if got := s.Registered(HookCapable); len(got) != 1 {
		t.Fatalf("capability not in capable slice: %v", got)
	}
	// The redesign's point: no dead-stub calls on the file fast path.
	if got := s.Registered(HookFilePermission); len(got) != 0 {
		t.Fatalf("capability wrongly dispatched on file_permission: %v", got)
	}
	if got := s.Registered(HookSocketCreate); len(got) != 0 {
		t.Fatalf("capability wrongly dispatched on socket_create: %v", got)
	}
}

func TestBaseEmbedderRegistersEverywhere(t *testing.T) {
	s := NewStack()
	if err := s.Register(&recordingModule{name: "full"}); err != nil {
		t.Fatal(err)
	}
	for h := HookID(0); h < NumHooks; h++ {
		if got := s.Registered(h); len(got) != 1 || got[0] != "full" {
			t.Errorf("hook %s: got %v, want [full]", h, got)
		}
	}
}

func TestModuleListReturnsInstancesInOrder(t *testing.T) {
	s := NewStack()
	if err := s.Register(capableOnly{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(&recordingModule{name: "rec"}); err != nil {
		t.Fatal(err)
	}
	ms := s.ModuleList()
	if len(ms) != 2 || ms[0].Name() != "capable-only" || ms[1].Name() != "rec" {
		t.Fatalf("ModuleList = %v", ms)
	}
}

func TestMetricsObserveHookWalks(t *testing.T) {
	s := NewStack()
	if err := s.Register(&recordingModule{name: "rec", deny: sys.EACCES}); err != nil {
		t.Fatal(err)
	}
	cred := sys.NewCred(0, 0)
	for i := 0; i < 3; i++ {
		s.InodePermission(cred, "/x", nil, sys.MayRead)
	}
	s.Capable(cred, sys.CapMacAdmin)

	var inode, capable *HookStat
	snap := s.Metrics().Snapshot()
	for i := range snap {
		switch snap[i].Hook {
		case HookInodePermission:
			inode = &snap[i]
		case HookCapable:
			capable = &snap[i]
		}
	}
	if inode == nil || inode.Calls != 3 || inode.Denials != 3 {
		t.Fatalf("inode_permission stat = %+v", inode)
	}
	if capable == nil || capable.Calls != 1 {
		t.Fatalf("capable stat = %+v", capable)
	}
	out := s.Metrics().Render()
	for _, frag := range []string{"hook inode_permission", "calls=3", "denials=3", "p99_ns<="} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q:\n%s", frag, out)
		}
	}
}

func TestMetricsQuantileBounds(t *testing.T) {
	m := NewMetrics()
	// 99 fast observations and one slow one: p50 stays in the fast
	// bucket, p99 must not exceed the slow sample's bucket ceiling.
	for i := 0; i < 99; i++ {
		m.Observe(HookFileOpen, 100*time.Nanosecond, false)
	}
	m.Observe(HookFileOpen, 2*time.Millisecond, false)
	st := m.Snapshot()[0]
	if p50 := st.Quantile(0.50); p50 > 256 {
		t.Errorf("p50 = %d ns, want <= 256", p50)
	}
	p99 := st.Quantile(0.99)
	if p99 > 1<<21 { // 2ms rounds into the 2^21 ns bucket
		t.Errorf("p99 = %d ns, want <= %d", p99, 1<<21)
	}
	if st.AvgNs() == 0 {
		t.Error("average latency is zero")
	}
}
