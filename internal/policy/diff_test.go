package policy

import (
	"strings"
	"testing"
)

func mustLoad(t *testing.T, src string) *Compiled {
	t.Helper()
	c, vr, err := Load(src)
	if err != nil || !vr.OK() {
		t.Fatalf("Load: %v %v", err, vr)
	}
	return c
}

const diffBase = `
states { normal = 0 emergency = 1 }
initial normal
permissions { READ DOORS }
state_per {
  normal: READ
  emergency: READ, DOORS
}
per_rules {
  READ  { allow read /dev/vehicle/** }
  DOORS { allow ioctl /dev/vehicle/door* }
}
transitions {
  normal -> emergency on crash
  emergency -> normal on clear
}
`

func TestDiffIdenticalIsEmpty(t *testing.T) {
	a := mustLoad(t, diffBase)
	b := mustLoad(t, diffBase)
	if changes := Diff(a, b); len(changes) != 0 {
		t.Fatalf("identical policies differ: %v", changes)
	}
	if FormatDiff(nil) != "" {
		t.Fatal("empty diff should format empty")
	}
}

func TestDiffDetectsAdditionsAndRemovals(t *testing.T) {
	a := mustLoad(t, diffBase)
	b := mustLoad(t, `
states { normal = 0 emergency = 1 lockdown = 2 }
initial normal
permissions { READ }
state_per {
  normal: READ
  emergency: READ
}
per_rules {
  READ { allow read /dev/vehicle/** }
}
transitions {
  normal -> emergency on crash
  emergency -> normal on clear
  normal -> lockdown on threat
}
`)
	text := FormatDiff(Diff(a, b))
	for _, frag := range []string{
		"state added: lockdown",
		"permission removed: DOORS",
		"rule removed: state emergency: allow ioctl /dev/vehicle/door*",
		"transition added: normal -> lockdown on threat",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("diff missing %q:\n%s", frag, text)
		}
	}
}

func TestDiffDetectsEncodingAndInitialChanges(t *testing.T) {
	a := mustLoad(t, "states { x = 0 y = 1 }\ninitial x")
	b := mustLoad(t, "states { x = 5 y = 1 }\ninitial y")
	text := FormatDiff(Diff(a, b))
	if !strings.Contains(text, "initial changed: x -> y") {
		t.Errorf("missing initial change:\n%s", text)
	}
	if !strings.Contains(text, "x encoding 0 -> 5") {
		t.Errorf("missing encoding change:\n%s", text)
	}
}

func TestDiffRuleChangeWithinState(t *testing.T) {
	a := mustLoad(t, diffBase)
	b := mustLoad(t, strings.Replace(diffBase,
		"allow ioctl /dev/vehicle/door*",
		"allow ioctl,write /dev/vehicle/door*", 1))
	text := FormatDiff(Diff(a, b))
	if !strings.Contains(text, "rule removed: state emergency: allow ioctl /dev/vehicle/door*") {
		t.Errorf("old rule not reported removed:\n%s", text)
	}
	if !strings.Contains(text, "rule added: state emergency: allow write,ioctl /dev/vehicle/door*") {
		t.Errorf("new rule not reported added:\n%s", text)
	}
}

// Property: Diff(a, b) and Diff(b, a) have mirrored added/removed counts.
func TestDiffSymmetry(t *testing.T) {
	a := mustLoad(t, diffBase)
	b := mustLoad(t, strings.Replace(diffBase, "emergency = 1", "emergency = 1\n  valet = 2", 1))
	ab := Diff(a, b)
	ba := Diff(b, a)
	count := func(changes []Change, action string) int {
		n := 0
		for _, c := range changes {
			if c.Action == action {
				n++
			}
		}
		return n
	}
	if count(ab, "added") != count(ba, "removed") || count(ab, "removed") != count(ba, "added") {
		t.Fatalf("asymmetric diff:\nab=%v\nba=%v", ab, ba)
	}
}
