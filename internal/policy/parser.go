package policy

import (
	"fmt"
)

// Parse converts policy source text into an AST. Syntax errors include
// line:col positions. Semantic problems (unknown states, conflicts) are
// reported separately by Validate.
func Parse(src string) (*File, error) {
	p := &parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	f := &File{}
	for p.tok.Kind != TokEOF {
		if p.tok.Kind != TokIdent {
			return nil, p.errf("expected a section keyword, got %s", p.tok.Kind)
		}
		switch p.tok.Text {
		case "states":
			if err := p.parseStates(f); err != nil {
				return nil, err
			}
		case "initial":
			if err := p.parseInitial(f); err != nil {
				return nil, err
			}
		case "failsafe":
			if err := p.parseFailsafe(f); err != nil {
				return nil, err
			}
		case "permissions":
			if err := p.parsePermissions(f); err != nil {
				return nil, err
			}
		case "events":
			if err := p.parseEvents(f); err != nil {
				return nil, err
			}
		case "state_per":
			if err := p.parseStatePer(f); err != nil {
				return nil, err
			}
		case "per_rules":
			if err := p.parsePerRules(f); err != nil {
				return nil, err
			}
		case "transitions":
			if err := p.parseTransitions(f); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unknown section %s (want states, initial, failsafe, permissions, events, state_per, per_rules, or transitions)", quoteIdent(p.tok.Text))
		}
	}
	return f, nil
}

type parser struct {
	lex *Lexer
	tok Token
}

func (p *parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("policy: %s: %s", p.tok.Pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, p.errf("expected %s, got %s %q", kind, p.tok.Kind, p.tok.Text)
	}
	t := p.tok
	if err := p.next(); err != nil {
		return Token{}, err
	}
	return t, nil
}

// parseStates handles: states { name [= number] ... }
func (p *parser) parseStates(f *File) error {
	if err := p.next(); err != nil { // consume 'states'
		return err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for p.tok.Kind != TokRBrace {
		name, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		decl := StateDecl{Name: name.Text, Pos: name.Pos}
		if p.tok.Kind == TokEquals {
			if err := p.next(); err != nil {
				return err
			}
			num, err := p.expect(TokNumber)
			if err != nil {
				return err
			}
			var enc uint32
			if _, err := fmt.Sscanf(num.Text, "%d", &enc); err != nil {
				return p.errf("bad state encoding %q", num.Text)
			}
			decl.Encoding = &enc
		}
		f.States = append(f.States, decl)
		if p.tok.Kind == TokComma {
			if err := p.next(); err != nil {
				return err
			}
		}
	}
	return p.next() // consume '}'
}

// parseInitial handles: initial name
func (p *parser) parseInitial(f *File) error {
	pos := p.tok.Pos
	if err := p.next(); err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if f.Initial != "" {
		return fmt.Errorf("policy: %s: duplicate 'initial' declaration", pos)
	}
	f.Initial = name.Text
	f.InitialPos = pos
	return nil
}

// parseFailsafe handles: failsafe name — the state the SSM degrades to
// when the event pipeline loses its heartbeat or a sensor goes dark.
func (p *parser) parseFailsafe(f *File) error {
	pos := p.tok.Pos
	if err := p.next(); err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if f.Failsafe != "" {
		return fmt.Errorf("policy: %s: duplicate 'failsafe' declaration", pos)
	}
	f.Failsafe = name.Text
	f.FailsafePos = pos
	return nil
}

// parsePermissions handles: permissions { NAME ... }
func (p *parser) parsePermissions(f *File) error {
	if err := p.next(); err != nil {
		return err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for p.tok.Kind != TokRBrace {
		name, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		f.Permissions = append(f.Permissions, PermDecl{Name: name.Text, Pos: name.Pos})
		if p.tok.Kind == TokComma {
			if err := p.next(); err != nil {
				return err
			}
		}
	}
	return p.next()
}

// parseEvents handles: events { name ... }
func (p *parser) parseEvents(f *File) error {
	if err := p.next(); err != nil {
		return err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for p.tok.Kind != TokRBrace {
		name, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		f.Events = append(f.Events, EventDecl{Name: name.Text, Pos: name.Pos})
		if p.tok.Kind == TokComma {
			if err := p.next(); err != nil {
				return err
			}
		}
	}
	return p.next()
}

// parseStatePer handles: state_per { state: PERM, PERM ... }
func (p *parser) parseStatePer(f *File) error {
	if err := p.next(); err != nil {
		return err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for p.tok.Kind != TokRBrace {
		state, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokColon); err != nil {
			return err
		}
		decl := StatePerDecl{State: state.Text, Pos: state.Pos}
		for {
			perm, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			decl.Perms = append(decl.Perms, perm.Text)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.next(); err != nil {
				return err
			}
		}
		f.StatePer = append(f.StatePer, decl)
	}
	return p.next()
}

// parsePerRules handles: per_rules { PERM { rule... } ... }
func (p *parser) parsePerRules(f *File) error {
	if err := p.next(); err != nil {
		return err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for p.tok.Kind != TokRBrace {
		perm, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokLBrace); err != nil {
			return err
		}
		decl := PerRulesDecl{Perm: perm.Text, Pos: perm.Pos}
		for p.tok.Kind != TokRBrace {
			rule, err := p.parseRule()
			if err != nil {
				return err
			}
			decl.Rules = append(decl.Rules, rule)
		}
		if err := p.next(); err != nil { // consume inner '}'
			return err
		}
		f.PerRules = append(f.PerRules, decl)
	}
	return p.next()
}

// parseRule handles: (allow|deny) op[,op...] /path [subject /path]
func (p *parser) parseRule() (RuleDecl, error) {
	verb, err := p.expect(TokIdent)
	if err != nil {
		return RuleDecl{}, err
	}
	rule := RuleDecl{Pos: verb.Pos}
	switch verb.Text {
	case "allow":
	case "deny":
		rule.Deny = true
	default:
		return RuleDecl{}, fmt.Errorf("policy: %s: rule must start with 'allow' or 'deny', got %s", verb.Pos, quoteIdent(verb.Text))
	}
	for {
		op, err := p.expect(TokIdent)
		if err != nil {
			return RuleDecl{}, err
		}
		rule.Ops = append(rule.Ops, op.Text)
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return RuleDecl{}, err
		}
	}
	path, err := p.expect(TokPath)
	if err != nil {
		return RuleDecl{}, err
	}
	rule.Path = path.Text
	if p.tok.Kind == TokIdent && p.tok.Text == "subject" {
		if err := p.next(); err != nil {
			return RuleDecl{}, err
		}
		subj, err := p.expect(TokPath)
		if err != nil {
			return RuleDecl{}, err
		}
		rule.Subject = subj.Text
	}
	return rule, nil
}

// parseTransitions handles: transitions { from -> to on event ... }
func (p *parser) parseTransitions(f *File) error {
	if err := p.next(); err != nil {
		return err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return err
	}
	for p.tok.Kind != TokRBrace {
		from, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(TokArrow); err != nil {
			return err
		}
		to, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		on, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		if on.Text != "on" {
			return fmt.Errorf("policy: %s: expected 'on', got %s", on.Pos, quoteIdent(on.Text))
		}
		ev, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		f.Transitions = append(f.Transitions, TransitionDecl{
			From: from.Text, To: to.Text, Event: ev.Text, Pos: from.Pos,
		})
	}
	return p.next()
}
