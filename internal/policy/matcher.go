package policy

import (
	"math/bits"
	"strings"

	"repro/internal/glob"
	"repro/internal/sys"
)

// This file is the compiled-policy fast path: at Compile time every
// state's rule set is lowered into a path-segment trie so an *uncached*
// covered/uncovered verdict is a handful of map probes and array walks
// instead of a glob-engine pass over every rule. The trie is built once,
// is immutable afterwards, and travels inside the decision snapshot the
// enforcement core publishes — see DESIGN.md §10.
//
// Exactness contract: Matcher.Decide returns bit-identical results to
// RuleSet.Decide — the same allowed verdict and the same deciding-rule
// pointer — for every (subject, path, mask) triple. The trie walk only
// collects *which* rules match the path; the verdict is then replayed
// over the matched rules in the precise order the walk engine evaluates
// them (first-segment bucket rules by declaration order, then wildcard
// rules), so deny-veto short-circuits and last-allow attribution cannot
// diverge. The differential fuzz suite (matcher_diff_test.go) holds the
// two engines against each other over random policies and access keys.

// inlineMatcherWords sizes the match bitset's inline segment: rule sets
// up to inlineMatcherWords*64 rules (the overwhelming case — every
// policy in the corpus fits many times over) track matches entirely on
// the caller's stack, so a decision allocates nothing. Larger sets
// spill the remaining words into one per-decision slice — a single
// allocation, still orders of magnitude cheaper than falling back to
// the glob walk the old hard 1024-rule cutoff forced.
const inlineMatcherWords = 16

// maxMatcherRules is the residual safety bound on indexable rules per
// state — a memory guard far past any plausible fleet policy, not a
// performance cliff. A state exceeding it keeps the walk engine and
// Compile emits a warning naming the cap (never a silent downgrade).
// Variable, not constant, so tests can exercise the cap without
// building a million rules.
var maxMatcherRules = 1 << 20

// matchBits is the per-decision scratch state: one bit per rule rank,
// segmented into the inline stack-resident words plus an optional
// spill block for states beyond the inline capacity. The walk never
// retains a pointer to it.
type matchBits struct {
	inline [inlineMatcherWords]uint64
	spill  []uint64 // words inlineMatcherWords.. for >1024-rule states
}

func (b *matchBits) set(rank int32) {
	if w := int(rank >> 6); w < inlineMatcherWords {
		b.inline[w] |= 1 << uint(rank&63)
	} else {
		b.spill[w-inlineMatcherWords] |= 1 << uint(rank&63)
	}
}

func (b *matchBits) setAll(ranks []int32) {
	for _, r := range ranks {
		b.set(r)
	}
}

func (b *matchBits) word(w int) uint64 {
	if w < inlineMatcherWords {
		return b.inline[w]
	}
	return b.spill[w-inlineMatcherWords]
}

// mnode is one trie node; edges consume exactly one path segment.
type mnode struct {
	literals map[string]*mnode // literal segment -> child
	patterns []patternEdge     // in-segment glob edges (*, ?, [...])
	dstar    *mnode            // "**" edge: consumes >= 1 whole segments
	ranks    []int32           // rules whose pattern ends at this node
}

type patternEdge struct {
	pattern string
	node    *mnode
}

func (n *mnode) child(seg glob.Seg) *mnode {
	switch seg.Kind {
	case glob.SegDoubleStar:
		if n.dstar == nil {
			n.dstar = &mnode{}
		}
		return n.dstar
	case glob.SegPattern:
		for i := range n.patterns {
			if n.patterns[i].pattern == seg.Text {
				return n.patterns[i].node
			}
		}
		c := &mnode{}
		n.patterns = append(n.patterns, patternEdge{pattern: seg.Text, node: c})
		return c
	default:
		if n.literals == nil {
			n.literals = make(map[string]*mnode)
		}
		c := n.literals[seg.Text]
		if c == nil {
			c = &mnode{}
			n.literals[seg.Text] = c
		}
		return c
	}
}

func (n *mnode) addRank(r int32) {
	// Multiple branches of one rule may terminate at the same node;
	// ranks are appended per rule in ascending order, so a duplicate is
	// always the last element.
	if k := len(n.ranks); k > 0 && n.ranks[k-1] == r {
		return
	}
	n.ranks = append(n.ranks, r)
}

// Matcher is the compiled decision engine for one state's rule set.
// It is immutable after construction and safe for concurrent use.
type Matcher struct {
	root *mnode
	// byRank holds the rules in evaluation-replay order: every rule
	// whose pattern has a literal first segment (the walk engine's
	// bucket population) in declaration order, then the wildcard-bucket
	// rules in declaration order. Rules from different literal buckets
	// can never match the same path, so this single total order
	// reproduces the walk engine's bucket-then-wildcard visit order for
	// any path.
	byRank []*CompiledRule
	// complex rules carry a pattern branch the trie cannot index (not
	// rooted at '/', or "**" glued mid-segment); they are matched with
	// the full glob engine on every decision. Rare by construction.
	complex      []*CompiledRule
	complexRanks []int32
	words        int // bitset words in use: ceil(len(byRank)/64)
}

// newMatcher compiles a rule set into a Matcher. It returns nil only
// when the set exceeds the maxMatcherRules memory guard; callers fall
// back to the walk engine, and Compile turns that fallback into a
// visible validation warning.
func newMatcher(rs *RuleSet) *Matcher {
	if len(rs.rules) > maxMatcherRules {
		return nil
	}
	m := &Matcher{root: &mnode{}}

	// Rank assignment replicates NewRuleSet's split: literal-first-
	// segment rules (in declaration order) rank before wildcard rules.
	var order []int
	for i := range rs.rules {
		if _, literal := firstSegment(rs.rules[i].Pattern.String()); literal {
			order = append(order, i)
		}
	}
	for i := range rs.rules {
		if _, literal := firstSegment(rs.rules[i].Pattern.String()); !literal {
			order = append(order, i)
		}
	}

	for rank, idx := range order {
		r := &rs.rules[idx]
		m.byRank = append(m.byRank, r)
		branches := r.Pattern.Branches()
		indexable := make([][]glob.Seg, 0, len(branches))
		allOK := true
		for _, br := range branches {
			segs, ok := glob.SplitSegments(br)
			if !ok {
				allOK = false
				break
			}
			indexable = append(indexable, segs)
		}
		if !allOK {
			// Any unindexable branch demotes the whole rule to the
			// complex list: the full glob already evaluates every branch,
			// so splitting the rule across both engines would only run
			// the backtracking matcher twice.
			m.complex = append(m.complex, r)
			m.complexRanks = append(m.complexRanks, int32(rank))
			continue
		}
		for _, segs := range indexable {
			n := m.root
			for _, seg := range segs {
				n = n.child(seg)
			}
			n.addRank(int32(rank))
		}
	}
	m.words = (len(m.byRank) + 63) / 64
	return m
}

// Len reports the number of rules the matcher indexes.
func (m *Matcher) Len() int { return len(m.byRank) }

// ComplexRules reports how many rules fell back to full glob matching
// (introspection for tests and the compile report).
func (m *Matcher) ComplexRules() int { return len(m.complex) }

// Decide evaluates an access request against the compiled trie. It is
// exact: the verdict and the deciding rule are identical to the walk
// engine's RuleSet.Decide (same *CompiledRule pointer). The hot path
// performs no allocation and never invokes the multi-branch glob engine
// for trie-indexed rules; only segment-confined matchers and — for the
// rare complex rules — the original backtracking matcher run.
func (m *Matcher) Decide(subject, path string, mask sys.Access) (allowed bool, matched *CompiledRule) {
	var st matchBits
	if m.words > inlineMatcherWords {
		st.spill = make([]uint64, m.words-inlineMatcherWords)
	}
	if len(path) > 0 && path[0] == '/' {
		m.walk(m.root, path, 1, &st)
	}
	// Non-rooted paths skip the trie entirely: every indexed branch
	// starts with a literal '/', so only complex rules can match them.
	for i, r := range m.complex {
		if r.Pattern.Match(path) {
			st.set(m.complexRanks[i])
		}
	}

	// Replay the verdict over the matched rules in rank order — the walk
	// engine's exact evaluation order.
	var granted sys.Access
	var lastAllow *CompiledRule
	for w := 0; w < m.words; w++ {
		word := st.word(w)
		for word != 0 {
			rank := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := m.byRank[rank]
			if r.Subject != nil && !r.Subject.Match(subject) {
				continue
			}
			if r.Deny {
				if mask&r.Access != 0 {
					return false, r
				}
				continue
			}
			if r.Access&mask != 0 {
				granted |= r.Access
				lastAllow = r
			}
		}
	}
	if granted.Has(mask) {
		return true, lastAllow
	}
	return false, nil
}

// walk collects the ranks of every trie-indexed rule whose pattern
// matches path[i:] starting from node n, where i sits at the beginning
// of a path segment (just past a '/').
func (m *Matcher) walk(n *mnode, path string, i int, st *matchBits) {
	if d := n.dstar; d != nil {
		// "**" consumes one or more whole segments. Option one: it eats
		// everything left (>= 1 segment always remains here), ending the
		// pattern at d. Option two..n: it eats through each interior
		// boundary and the rest of the pattern resumes at d.
		st.setAll(d.ranks)
		j := i
		for {
			e := strings.IndexByte(path[j:], '/')
			if e < 0 {
				break
			}
			j += e + 1
			m.walk(d, path, j, st)
		}
	}
	e := strings.IndexByte(path[i:], '/')
	if e < 0 {
		seg := path[i:]
		if c := n.literals[seg]; c != nil {
			st.setAll(c.ranks)
		}
		for k := range n.patterns {
			if glob.MatchSegment(n.patterns[k].pattern, seg) {
				st.setAll(n.patterns[k].node.ranks)
			}
		}
		return
	}
	seg := path[i : i+e]
	next := i + e + 1
	if c := n.literals[seg]; c != nil {
		m.walk(c, path, next, st)
	}
	for k := range n.patterns {
		if glob.MatchSegment(n.patterns[k].pattern, seg) {
			m.walk(n.patterns[k].node, path, next, st)
		}
	}
}

// --- coverage trie ---

// coverNode is the coverage trie's node: the same segment-edge shape as
// mnode but with a boolean terminal and early-exit matching, since the
// only question is "does any pattern cover this path".
type coverNode struct {
	literals map[string]*coverNode
	patterns []coverEdge
	dstar    *coverNode
	terminal bool
}

type coverEdge struct {
	pattern string
	node    *coverNode
}

func (n *coverNode) child(seg glob.Seg) *coverNode {
	switch seg.Kind {
	case glob.SegDoubleStar:
		if n.dstar == nil {
			n.dstar = &coverNode{}
		}
		return n.dstar
	case glob.SegPattern:
		for i := range n.patterns {
			if n.patterns[i].pattern == seg.Text {
				return n.patterns[i].node
			}
		}
		c := &coverNode{}
		n.patterns = append(n.patterns, coverEdge{pattern: seg.Text, node: c})
		return c
	default:
		if n.literals == nil {
			n.literals = make(map[string]*coverNode)
		}
		c := n.literals[seg.Text]
		if c == nil {
			c = &coverNode{}
			n.literals[seg.Text] = c
		}
		return c
	}
}

// coverTrie indexes the union of every rule pattern for the O(segments)
// covered/uncovered verdict — the first gate of every hook decision.
type coverTrie struct {
	root    *coverNode
	complex []*glob.Glob // patterns the trie cannot index
}

func newCoverTrie(patterns []*glob.Glob) *coverTrie {
	t := &coverTrie{root: &coverNode{}}
	for _, g := range patterns {
		branches := g.Branches()
		indexable := make([][]glob.Seg, 0, len(branches))
		allOK := true
		for _, br := range branches {
			segs, ok := glob.SplitSegments(br)
			if !ok {
				allOK = false
				break
			}
			indexable = append(indexable, segs)
		}
		if !allOK {
			t.complex = append(t.complex, g)
			continue
		}
		for _, segs := range indexable {
			n := t.root
			for _, seg := range segs {
				n = n.child(seg)
			}
			n.terminal = true
		}
	}
	return t
}

func (t *coverTrie) covers(path string) bool {
	if len(path) > 0 && path[0] == '/' && coverWalk(t.root, path, 1) {
		return true
	}
	for _, g := range t.complex {
		if g.Match(path) {
			return true
		}
	}
	return false
}

func coverWalk(n *coverNode, path string, i int) bool {
	if d := n.dstar; d != nil {
		if d.terminal {
			return true // "**" eats the >= 1 remaining segments
		}
		j := i
		for {
			e := strings.IndexByte(path[j:], '/')
			if e < 0 {
				break
			}
			j += e + 1
			if coverWalk(d, path, j) {
				return true
			}
		}
	}
	e := strings.IndexByte(path[i:], '/')
	if e < 0 {
		seg := path[i:]
		if c := n.literals[seg]; c != nil && c.terminal {
			return true
		}
		for k := range n.patterns {
			if n.patterns[k].node.terminal && glob.MatchSegment(n.patterns[k].pattern, seg) {
				return true
			}
		}
		return false
	}
	seg := path[i : i+e]
	next := i + e + 1
	if c := n.literals[seg]; c != nil && coverWalk(c, path, next) {
		return true
	}
	for k := range n.patterns {
		if glob.MatchSegment(n.patterns[k].pattern, seg) && coverWalk(n.patterns[k].node, path, next) {
			return true
		}
	}
	return false
}
