package policy

// File is the parsed form of one SACK policy document. Field names follow
// the paper's Table I interface names.
type File struct {
	States      []StateDecl
	Initial     string
	InitialPos  Pos
	Failsafe    string // state the SSM degrades to when detection dies
	FailsafePos Pos
	Permissions []PermDecl
	Events      []EventDecl
	StatePer    []StatePerDecl
	PerRules    []PerRulesDecl
	Transitions []TransitionDecl
}

// StateDecl declares a situation state and its optional encoding.
type StateDecl struct {
	Name     string
	Encoding *uint32 // nil: auto-assigned at compile time
	Pos      Pos
}

// PermDecl declares a SACK permission (e.g. CONTROL_CAR_DOORS).
type PermDecl struct {
	Name string
	Pos  Pos
}

// EventDecl declares a situation event usable in transitions.
type EventDecl struct {
	Name string
	Pos  Pos
}

// StatePerDecl maps one situation state to its allowed permissions
// (the State_Per interface).
type StatePerDecl struct {
	State string
	Perms []string
	Pos   Pos
}

// PerRulesDecl maps one permission to its MAC rules (the Per_Rules
// interface).
type PerRulesDecl struct {
	Perm  string
	Rules []RuleDecl
	Pos   Pos
}

// RuleDecl is one MAC rule inside a Per_Rules block:
//
//	allow read,write /dev/vehicle/door* [subject /usr/bin/rescued]
//	deny  ioctl      /dev/vehicle/**
type RuleDecl struct {
	Deny    bool
	Ops     []string
	Path    string
	Subject string // optional executable glob confining who the rule covers
	Pos     Pos
}

// TransitionDecl is one SSM transition rule: From -> To on Event.
type TransitionDecl struct {
	From  string
	To    string
	Event string
	Pos   Pos
}

// StateNames lists declared state names in order.
func (f *File) StateNames() []string {
	out := make([]string, len(f.States))
	for i, s := range f.States {
		out[i] = s.Name
	}
	return out
}

// PermissionNames lists declared permission names in order.
func (f *File) PermissionNames() []string {
	out := make([]string, len(f.Permissions))
	for i, p := range f.Permissions {
		out[i] = p.Name
	}
	return out
}

// EventNames lists declared event names in order.
func (f *File) EventNames() []string {
	out := make([]string, len(f.Events))
	for i, e := range f.Events {
		out[i] = e.Name
	}
	return out
}
