package policy

import (
	"strings"
	"testing"

	"repro/internal/sys"
)

const examplePolicy = `
# SACK example policy (paper Fig. 1)
states {
  normal = 0
  emergency = 1
}

initial normal

permissions {
  NORMAL
  CONTROL_CAR_DOORS
}

state_per {
  normal:    NORMAL
  emergency: NORMAL, CONTROL_CAR_DOORS
}

per_rules {
  NORMAL {
    allow read /etc/**
  }
  CONTROL_CAR_DOORS {
    allow ioctl,write /dev/vehicle/door*
    allow ioctl,write /dev/vehicle/window* subject /usr/bin/rescued
  }
}

transitions {
  normal -> emergency on crash_detected
  emergency -> normal on all_clear
}
`

func TestParseExample(t *testing.T) {
	f, err := Parse(examplePolicy)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := f.StateNames(); len(got) != 2 || got[0] != "normal" || got[1] != "emergency" {
		t.Fatalf("states = %v", got)
	}
	if f.Initial != "normal" {
		t.Fatalf("initial = %q", f.Initial)
	}
	if got := f.PermissionNames(); len(got) != 2 {
		t.Fatalf("permissions = %v", got)
	}
	if len(f.StatePer) != 2 || len(f.StatePer[1].Perms) != 2 {
		t.Fatalf("state_per = %+v", f.StatePer)
	}
	if len(f.PerRules) != 2 {
		t.Fatalf("per_rules = %+v", f.PerRules)
	}
	doors := f.PerRules[1]
	if doors.Perm != "CONTROL_CAR_DOORS" || len(doors.Rules) != 2 {
		t.Fatalf("doors block = %+v", doors)
	}
	if doors.Rules[1].Subject != "/usr/bin/rescued" {
		t.Fatalf("subject = %q", doors.Rules[1].Subject)
	}
	if len(f.Transitions) != 2 {
		t.Fatalf("transitions = %+v", f.Transitions)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string // expected substring of the error
	}{
		{"unknown section", "bogus { }", "unknown section"},
		{"missing brace", "states normal", "'{'"},
		{"bad rule verb", "per_rules { P { permit read /x } }", "allow"},
		{"bad arrow", "transitions { a > b on e }", ""},
		{"missing on", "transitions { a -> b at e }", "'on'"},
		{"duplicate initial", "states { a }\ninitial a\ninitial a", "duplicate"},
		{"number as state", "states { 42 }", "identifier"},
		{"unterminated", "states {", ""},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.frag != "" && !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := LexAll("states {\n  a = 1\n}")
	if err != nil {
		t.Fatal(err)
	}
	// tokens: states { a = 1 } EOF
	if len(toks) != 7 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if toks[2].Pos.Line != 2 || toks[2].Pos.Col != 3 {
		t.Fatalf("token %q at %v, want 2:3", toks[2].Text, toks[2].Pos)
	}
}

func TestLexerPathsWithBraces(t *testing.T) {
	toks, err := LexAll("/dev/{door,window}* }")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokPath || toks[0].Text != "/dev/{door,window}*" {
		t.Fatalf("path token = %+v", toks[0])
	}
	if toks[1].Kind != TokRBrace {
		t.Fatalf("expected closing brace to survive, got %+v", toks[1])
	}
}

func TestValidateCatchesSemanticErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"no states", "permissions { P }", "no situation states"},
		{"dup state", "states { a a }", "duplicate state"},
		{"dup encoding", "states { a = 1 b = 1 }", "encoding"},
		{"bad initial", "states { a }\ninitial zz", "not declared"},
		{"dup permission", "states { a }\npermissions { P P }", "duplicate permission"},
		{"unknown perm in state_per", "states { a }\nstate_per { a: NOPE }", "undeclared permission"},
		{"unknown state in state_per", "states { a }\npermissions { P }\nstate_per { zz: P }", "undeclared state"},
		{"dup state_per", "states { a }\npermissions { P }\nstate_per { a: P\n a: P }", "twice"},
		{"unknown perm in per_rules", "states { a }\nper_rules { NOPE { allow read /x } }", "undeclared permission"},
		{"dup per_rules", "states { a }\npermissions { P }\nper_rules { P { allow read /x } P { allow read /y } }", "two per_rules"},
		{"bad op", "states { a }\npermissions { P }\nper_rules { P { allow fly /x } }", "unknown operation"},
		{"bad glob", "states { a }\npermissions { P }\nper_rules { P { allow read /x[ } }", "bad path pattern"},
		{"unknown transition state", "states { a }\ntransitions { a -> zz on e }", "not declared"},
		{"nondeterministic", "states { a b }\ntransitions { a -> a on e\n a -> b on e }", "nondeterministic"},
		{"undeclared event", "states { a b }\nevents { e1 }\ntransitions { a -> b on e2 }", "undeclared event"},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse failed: %v", c.name, err)
		}
		vr := Validate(f)
		if vr.OK() {
			t.Errorf("%s: expected validation error", c.name)
			continue
		}
		if !strings.Contains(vr.Err().Error(), c.frag) {
			t.Errorf("%s: errors %v do not mention %q", c.name, vr.Errors(), c.frag)
		}
	}
}

func TestValidateWarnings(t *testing.T) {
	src := `
states { a b c }
initial a
permissions { USED UNUSED }
state_per { a: USED }
per_rules {
  USED {
    allow read /data/**
    deny read /data/*.txt
  }
}
transitions { a -> b on e1 }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	vr := Validate(f)
	if !vr.OK() {
		t.Fatalf("unexpected errors: %v", vr.Errors())
	}
	warnings := vr.Warnings()
	var frags = []string{
		"never granted",     // UNUSED has no state
		"no per_rules",      // UNUSED grants nothing
		"unreachable",       // state c
		"allows and denies", // conflict in USED
	}
	joined := ""
	for _, w := range warnings {
		joined += w.String() + "\n"
	}
	for _, frag := range frags {
		if !strings.Contains(joined, frag) {
			t.Errorf("warnings missing %q in:\n%s", frag, joined)
		}
	}
}

func TestCompileExample(t *testing.T) {
	c, vr, err := Load(examplePolicy)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !vr.OK() {
		t.Fatalf("validation: %v", vr.Errors())
	}
	if c.Initial != "normal" {
		t.Fatalf("initial = %q", c.Initial)
	}
	enc, ok := c.Encoding("emergency")
	if !ok || enc != 1 {
		t.Fatalf("encoding(emergency) = %d,%v", enc, ok)
	}

	normal := c.StateSets["normal"]
	emergency := c.StateSets["emergency"]
	if normal.Len() != 1 || emergency.Len() != 3 {
		t.Fatalf("rule set sizes = %d, %d", normal.Len(), emergency.Len())
	}

	// normal: /etc readable, doors untouchable.
	if ok, _ := normal.Decide("", "/etc/fstab", sys.MayRead); !ok {
		t.Error("normal should allow /etc read")
	}
	if ok, _ := normal.Decide("", "/dev/vehicle/door0", sys.MayIoctl); ok {
		t.Error("normal should not allow door ioctl")
	}

	// emergency: doors controllable, windows only for the rescue daemon.
	if ok, _ := emergency.Decide("/usr/lib/ivi/radio", "/dev/vehicle/door1", sys.MayIoctl); !ok {
		t.Error("emergency should allow door ioctl for any subject")
	}
	if ok, _ := emergency.Decide("/usr/lib/ivi/radio", "/dev/vehicle/window0", sys.MayIoctl); ok {
		t.Error("window rule is subject-scoped; radio app must be denied")
	}
	if ok, _ := emergency.Decide("/usr/bin/rescued", "/dev/vehicle/window0", sys.MayIoctl); !ok {
		t.Error("rescued should control windows in emergency")
	}

	// Coverage: all rule paths covered, others not.
	for path, want := range map[string]bool{
		"/etc/fstab":           true,
		"/dev/vehicle/door0":   true,
		"/dev/vehicle/window2": true,
		"/tmp/scratch":         false,
		"/dev/vehicle/audio0":  false,
	} {
		if got := c.Coverage.Covers(path); got != want {
			t.Errorf("Covers(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestCompileAutoEncodings(t *testing.T) {
	src := "states { a b = 0 c }\ninitial a"
	c, _, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]uint32{}
	for _, s := range c.States {
		got[s.Name] = s.Encoding
	}
	if got["b"] != 0 {
		t.Fatalf("explicit encoding lost: %v", got)
	}
	if got["a"] == got["b"] || got["a"] == got["c"] || got["b"] == got["c"] {
		t.Fatalf("encodings not unique: %v", got)
	}
}

func TestDenyWinsInRuleSet(t *testing.T) {
	src := `
states { s }
initial s
permissions { P }
state_per { s: P }
per_rules {
  P {
    allow read,write /data/**
    deny write /data/readonly/**
  }
}
`
	c, _, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	rs := c.StateSets["s"]
	if ok, _ := rs.Decide("", "/data/file", sys.MayWrite); !ok {
		t.Error("general write should be allowed")
	}
	if ok, _ := rs.Decide("", "/data/readonly/file", sys.MayWrite); ok {
		t.Error("deny rule must win")
	}
	if ok, _ := rs.Decide("", "/data/readonly/file", sys.MayRead); !ok {
		t.Error("read of readonly area should still be allowed")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f1, err := Parse(examplePolicy)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(f1)
	f2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse of formatted output: %v\n%s", err, text)
	}
	c1, _, err1 := Compile(f1)
	c2, _, err2 := Compile(f2)
	if err1 != nil || err2 != nil {
		t.Fatalf("compile: %v, %v", err1, err2)
	}
	if len(c1.States) != len(c2.States) || c1.Initial != c2.Initial {
		t.Fatal("round trip changed states")
	}
	for name, rs1 := range c1.StateSets {
		rs2 := c2.StateSets[name]
		if rs2 == nil || rs1.Len() != rs2.Len() {
			t.Fatalf("round trip changed rule set %q", name)
		}
	}
	if len(c1.Transitions) != len(c2.Transitions) {
		t.Fatal("round trip changed transitions")
	}
}

func TestRuleSetBucketingMatchesLinearScan(t *testing.T) {
	// The first-segment index must never change decisions: compare the
	// indexed Decide against a brute-force evaluation.
	src := `
states { s }
initial s
permissions { P }
state_per { s: P }
per_rules {
  P {
    allow read /etc/**
    allow write /var/log/*.log
    deny write /var/log/secure.log
    allow ioctl /dev/vehicle/door*
    allow read,write /**/shared.dat
  }
}
`
	c, _, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	rs := c.StateSets["s"]
	rules := rs.Rules()
	brute := func(subject, path string, mask sys.Access) bool {
		var granted sys.Access
		for i := range rules {
			r := &rules[i]
			if !r.Matches(subject, path) {
				continue
			}
			if r.Deny && mask&r.Access != 0 {
				return false
			}
			if !r.Deny {
				granted |= r.Access
			}
		}
		return granted.Has(mask)
	}
	paths := []string{
		"/etc/a", "/etc/x/y", "/var/log/app.log", "/var/log/secure.log",
		"/dev/vehicle/door9", "/any/where/shared.dat", "/other", "/var/log/sub/app.log",
	}
	masks := []sys.Access{sys.MayRead, sys.MayWrite, sys.MayIoctl, sys.MayRead | sys.MayWrite}
	for _, p := range paths {
		for _, m := range masks {
			want := brute("", p, m)
			got, _ := rs.Decide("", p, m)
			if got != want {
				t.Errorf("Decide(%q, %s) = %v, brute = %v", p, m, got, want)
			}
		}
	}
}

func TestCarveOutIsNotAConflict(t *testing.T) {
	src := `
states { s }
initial s
permissions { P }
state_per { s: P }
per_rules {
  P {
    allow write /dev/firmware/*
    deny write /dev/firmware/bootloader
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	vr := Validate(f)
	for _, w := range vr.Warnings() {
		if strings.Contains(w.Message, "allows and denies") {
			t.Fatalf("carve-out flagged as conflict: %s", w)
		}
	}
	// The inverse (literal allow under a deny glob) stays a conflict.
	src2 := strings.Replace(src,
		"allow write /dev/firmware/*\n    deny write /dev/firmware/bootloader",
		"allow write /dev/firmware/bootloader\n    deny write /dev/firmware/*", 1)
	f2, err := Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range Validate(f2).Warnings() {
		if strings.Contains(w.Message, "allows and denies") {
			found = true
		}
	}
	if !found {
		t.Fatal("shadowed allow not flagged")
	}
}
