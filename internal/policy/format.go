package policy

import (
	"fmt"
	"strings"
)

// Format renders the AST back to canonical policy text. Parsing the
// output reproduces an equivalent AST (round-trip property covered in
// tests).
func Format(f *File) string {
	var b strings.Builder

	if len(f.States) > 0 {
		b.WriteString("states {\n")
		for _, s := range f.States {
			if s.Encoding != nil {
				fmt.Fprintf(&b, "  %s = %d\n", s.Name, *s.Encoding)
			} else {
				fmt.Fprintf(&b, "  %s\n", s.Name)
			}
		}
		b.WriteString("}\n\n")
	}

	if f.Initial != "" {
		fmt.Fprintf(&b, "initial %s\n\n", f.Initial)
	}

	if f.Failsafe != "" {
		fmt.Fprintf(&b, "failsafe %s\n\n", f.Failsafe)
	}

	if len(f.Events) > 0 {
		b.WriteString("events {\n")
		for _, e := range f.Events {
			fmt.Fprintf(&b, "  %s\n", e.Name)
		}
		b.WriteString("}\n\n")
	}

	if len(f.Permissions) > 0 {
		b.WriteString("permissions {\n")
		for _, p := range f.Permissions {
			fmt.Fprintf(&b, "  %s\n", p.Name)
		}
		b.WriteString("}\n\n")
	}

	if len(f.StatePer) > 0 {
		b.WriteString("state_per {\n")
		for _, sp := range f.StatePer {
			fmt.Fprintf(&b, "  %s: %s\n", sp.State, strings.Join(sp.Perms, ", "))
		}
		b.WriteString("}\n\n")
	}

	if len(f.PerRules) > 0 {
		b.WriteString("per_rules {\n")
		for _, pr := range f.PerRules {
			fmt.Fprintf(&b, "  %s {\n", pr.Perm)
			for _, r := range pr.Rules {
				verb := "allow"
				if r.Deny {
					verb = "deny"
				}
				fmt.Fprintf(&b, "    %s %s %s", verb, strings.Join(r.Ops, ","), r.Path)
				if r.Subject != "" {
					fmt.Fprintf(&b, " subject %s", r.Subject)
				}
				b.WriteByte('\n')
			}
			b.WriteString("  }\n")
		}
		b.WriteString("}\n\n")
	}

	if len(f.Transitions) > 0 {
		b.WriteString("transitions {\n")
		for _, t := range f.Transitions {
			fmt.Fprintf(&b, "  %s -> %s on %s\n", t.From, t.To, t.Event)
		}
		b.WriteString("}\n")
	}

	return b.String()
}
