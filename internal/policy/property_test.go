package policy

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sys"
)

// genPolicy builds a random but always-valid policy from a seed:
// 1-6 states in a ring of transitions, 1-4 permissions with 0-5 rules
// each over a small path alphabet, and random state->permission grants.
func genPolicy(rng *rand.Rand) string {
	nStates := 1 + rng.Intn(6)
	nPerms := 1 + rng.Intn(4)
	ops := []string{"read", "write", "ioctl", "exec", "mmap", "create", "unlink"}
	pathTemplates := []string{
		"/dev/vehicle/door*",
		"/dev/vehicle/**",
		"/etc/app%d.conf",
		"/srv/zone%d/**",
		"/var/log/*.log",
		"/usr/lib/ivi/app%d",
	}

	var b strings.Builder
	b.WriteString("states {\n")
	for i := 0; i < nStates; i++ {
		fmt.Fprintf(&b, "  s%d = %d\n", i, i)
	}
	b.WriteString("}\n")
	fmt.Fprintf(&b, "initial s%d\n", rng.Intn(nStates))

	b.WriteString("permissions {\n")
	for i := 0; i < nPerms; i++ {
		fmt.Fprintf(&b, "  P%d\n", i)
	}
	b.WriteString("}\n")

	b.WriteString("state_per {\n")
	for i := 0; i < nStates; i++ {
		var grants []string
		for p := 0; p < nPerms; p++ {
			if rng.Intn(2) == 0 {
				grants = append(grants, fmt.Sprintf("P%d", p))
			}
		}
		if len(grants) > 0 {
			fmt.Fprintf(&b, "  s%d: %s\n", i, strings.Join(grants, ", "))
		}
	}
	b.WriteString("}\n")

	b.WriteString("per_rules {\n")
	for p := 0; p < nPerms; p++ {
		fmt.Fprintf(&b, "  P%d {\n", p)
		nRules := 1 + rng.Intn(5)
		for r := 0; r < nRules; r++ {
			nOps := 1 + rng.Intn(3)
			chosen := make([]string, 0, nOps)
			for len(chosen) < nOps {
				op := ops[rng.Intn(len(ops))]
				dup := false
				for _, c := range chosen {
					if c == op {
						dup = true
					}
				}
				if !dup {
					chosen = append(chosen, op)
				}
			}
			path := pathTemplates[rng.Intn(len(pathTemplates))]
			if strings.Contains(path, "%d") {
				path = fmt.Sprintf(path, rng.Intn(4))
			}
			fmt.Fprintf(&b, "    allow %s %s\n", strings.Join(chosen, ","), path)
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")

	if nStates > 1 {
		b.WriteString("transitions {\n")
		for i := 0; i < nStates; i++ {
			fmt.Fprintf(&b, "  s%d -> s%d on ev%d\n", i, (i+1)%nStates, i)
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// samplePaths are probe points for decision-equivalence checks.
var samplePaths = []string{
	"/dev/vehicle/door0", "/dev/vehicle/window3", "/dev/vehicle/audio0",
	"/etc/app0.conf", "/etc/app3.conf", "/etc/other",
	"/srv/zone0/deep/file", "/srv/zone2/x", "/var/log/app.log",
	"/var/log/sub/app.log", "/usr/lib/ivi/app1", "/tmp/unrelated",
}

var sampleMasks = []sys.Access{
	sys.MayRead, sys.MayWrite, sys.MayIoctl, sys.MayExec,
	sys.MayRead | sys.MayWrite, sys.MayCreate, sys.MayUnlink, sys.MayMmap,
}

// TestPropertyGeneratedPoliciesCompile: every generated policy parses,
// validates without errors, and compiles.
func TestPropertyGeneratedPoliciesCompile(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		src := genPolicy(rand.New(rand.NewSource(seed)))
		c, vr, err := Load(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if !vr.OK() {
			t.Fatalf("seed %d: validation errors %v\n%s", seed, vr.Errors(), src)
		}
		if len(c.States) == 0 || c.Coverage == nil {
			t.Fatalf("seed %d: incomplete compile", seed)
		}
	}
}

// TestPropertyFormatPreservesDecisions: Format -> Parse -> Compile yields
// a policy making identical decisions on every sampled (state, path,
// mask) triple.
func TestPropertyFormatPreservesDecisions(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		src := genPolicy(rand.New(rand.NewSource(seed)))
		f1, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c1, _, err := Compile(f1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		f2, err := Parse(Format(f1))
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, Format(f1))
		}
		c2, _, err := Compile(f2)
		if err != nil {
			t.Fatalf("seed %d: recompile: %v", seed, err)
		}
		for _, st := range c1.StateNames() {
			rs1, rs2 := c1.StateSets[st], c2.StateSets[st]
			for _, path := range samplePaths {
				for _, mask := range sampleMasks {
					d1, _ := rs1.Decide("", path, mask)
					d2, _ := rs2.Decide("", path, mask)
					if d1 != d2 {
						t.Fatalf("seed %d: state %s path %s mask %s: %v vs %v",
							seed, st, path, mask, d1, d2)
					}
				}
			}
		}
	}
}

// TestPropertyAllowImpliesCovered: if any state's rule set allows an
// access, the coverage index must cover the path (otherwise enforcement
// and pass-through would disagree).
func TestPropertyAllowImpliesCovered(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		src := genPolicy(rand.New(rand.NewSource(seed)))
		c, _, err := Load(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, st := range c.StateNames() {
			rs := c.StateSets[st]
			for _, path := range samplePaths {
				for _, mask := range sampleMasks {
					if ok, _ := rs.Decide("", path, mask); ok && !c.Coverage.Covers(path) {
						t.Fatalf("seed %d: state %s allows %s on uncovered %s", seed, st, mask, path)
					}
				}
			}
		}
	}
}

// TestPropertyRuleSetMonotoneInMask: if a rule set allows a combined
// mask, it allows each individual bit (allow semantics are conjunctive).
func TestPropertyRuleSetMonotoneInMask(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		src := genPolicy(rand.New(rand.NewSource(seed)))
		c, _, err := Load(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bits := []sys.Access{sys.MayRead, sys.MayWrite, sys.MayIoctl, sys.MayExec}
		for _, st := range c.StateNames() {
			rs := c.StateSets[st]
			for _, path := range samplePaths {
				for i := 0; i < len(bits); i++ {
					for j := i + 1; j < len(bits); j++ {
						both, _ := rs.Decide("", path, bits[i]|bits[j])
						if !both {
							continue
						}
						a, _ := rs.Decide("", path, bits[i])
						b, _ := rs.Decide("", path, bits[j])
						if !a || !b {
							t.Fatalf("seed %d: %s|%s allowed but singles not (state %s, %s)",
								seed, bits[i], bits[j], st, path)
						}
					}
				}
			}
		}
	}
}

// TestPropertyStatePermsComposition: a state's rule set is exactly the
// concatenation of its granted permissions' rules (|g(f(SS))| check).
func TestPropertyStatePermsComposition(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		src := genPolicy(rand.New(rand.NewSource(seed)))
		c, _, err := Load(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, st := range c.StateNames() {
			want := 0
			for _, p := range c.StatePerms[st] {
				want += len(c.PermRules[p])
			}
			if got := c.StateSets[st].Len(); got != want {
				t.Fatalf("seed %d: state %s has %d rules, want %d", seed, st, got, want)
			}
		}
	}
}
