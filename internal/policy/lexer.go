// Package policy implements SACK's situation-aware policy language: the
// four configuration interfaces of Table I (States, Permissions,
// State_Per, Per_Rules) plus the transition rules that define the
// situation state machine of Fig. 2. It provides a lexer, parser,
// semantic validator with conflict detection, and a compiler producing
// the immutable per-state rule sets the kernel module enforces.
package policy

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokPath // begins with '/'
	TokLBrace
	TokRBrace
	TokColon
	TokComma
	TokEquals
	TokArrow // ->
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokPath:
		return "path"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokColon:
		return "':'"
	case TokComma:
		return "','"
	case TokEquals:
		return "'='"
	case TokArrow:
		return "'->'"
	}
	return "unknown token"
}

// Pos is a source position for diagnostics.
type Pos struct {
	Line int
	Col  int
}

// String renders line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// Lexer tokenises policy source. Comments start with '#' or "//" and run
// to end of line. Newlines are insignificant (the grammar is brace- and
// keyword-delimited).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// isPathChar reports whether c may appear in a path/glob token.
func isPathChar(c byte) bool {
	switch c {
	case '/', '*', '?', '.', '-', '_', '[', ']', '^', '{', '}':
		return true
	}
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Next returns the next token. Lexical errors are reported as err.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	pos := Pos{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case c == '{':
		l.advance()
		return Token{Kind: TokLBrace, Text: "{", Pos: pos}, nil
	case c == '}':
		l.advance()
		return Token{Kind: TokRBrace, Text: "}", Pos: pos}, nil
	case c == ':':
		l.advance()
		return Token{Kind: TokColon, Text: ":", Pos: pos}, nil
	case c == ',':
		l.advance()
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case c == '=':
		l.advance()
		return Token{Kind: TokEquals, Text: "=", Pos: pos}, nil
	case c == '-':
		l.advance()
		if l.peek() != '>' {
			return Token{}, fmt.Errorf("policy: %s: expected '->' after '-'", pos)
		}
		l.advance()
		return Token{Kind: TokArrow, Text: "->", Pos: pos}, nil
	case c == '/':
		start := l.off
		depth := 0
		for l.off < len(l.src) {
			ch := l.peek()
			// Braces inside a path belong to glob alternation; track
			// nesting so a block-closing '}' is not swallowed.
			if ch == '{' {
				depth++
			} else if ch == '}' {
				if depth == 0 {
					break
				}
				depth--
			} else if ch == ',' {
				// Commas separate alternation branches inside braces but
				// terminate the token at depth zero (list punctuation).
				if depth == 0 {
					break
				}
			} else if !isPathChar(ch) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.off]
		if depth != 0 {
			return Token{}, fmt.Errorf("policy: %s: unbalanced '{' in path %q", pos, text)
		}
		return Token{Kind: TokPath, Text: text, Pos: pos}, nil
	case c >= '0' && c <= '9':
		start := l.off
		for l.off < len(l.src) && l.peek() >= '0' && l.peek() <= '9' {
			l.advance()
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.off], Pos: pos}, nil
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentChar(l.peek()) {
			// '-' may appear inside kebab-case identifiers, but "->" is
			// always the transition arrow: stop before it.
			if l.peek() == '-' && l.off+1 < len(l.src) && l.src[l.off+1] == '>' {
				break
			}
			l.advance()
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.off], Pos: pos}, nil
	default:
		return Token{}, fmt.Errorf("policy: %s: unexpected character %q", pos, string(c))
	}
}

// LexAll tokenises the whole input (testing convenience).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// quoteIdent formats an identifier for diagnostics.
func quoteIdent(s string) string { return "'" + strings.TrimSpace(s) + "'" }
