package policy

import (
	"strings"
	"testing"

	"repro/internal/glob"
	"repro/internal/sys"
)

// The issue's motivating shadowing pair: a deny glob covering an allow
// glob with no shared literal path. The conflict pass must flag it and
// name a concrete witness object.
func TestConflictGlobGlobShadowing(t *testing.T) {
	src := `
states { workshop }
initial workshop
permissions { CAN }
state_per { workshop: CAN }
per_rules {
  CAN {
    allow write /dev/can/actuator*
    deny write /dev/can/** subject /usr/bin/ivi
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var conflict string
	for _, w := range Validate(f).Warnings() {
		if strings.Contains(w.Message, "allows and denies") {
			conflict = w.Message
		}
	}
	if conflict == "" {
		t.Fatal("glob/glob shadowing not flagged as a conflict")
	}
	if !strings.Contains(conflict, "e.g.") {
		t.Fatalf("conflict warning carries no witness: %s", conflict)
	}
	// The quoted witness must really match both patterns.
	start := strings.Index(conflict, `e.g. "`) + len(`e.g. "`)
	witness := conflict[start : start+strings.IndexByte(conflict[start:], '"')]
	for _, pat := range []string{"/dev/can/actuator*", "/dev/can/**"} {
		if !glob.MustCompile(pat).Match(witness) {
			t.Fatalf("witness %q does not match %q", witness, pat)
		}
	}
}

// Disjoint patterns sharing a literal prefix were the old heuristic's
// false positive; the exact intersection must stay silent.
func TestConflictDisjointPrefixSharingPatterns(t *testing.T) {
	src := `
states { a }
initial a
permissions { P }
state_per { a: P }
per_rules {
  P {
    allow write /dev/can/a*/x
    deny write /dev/can/*/y
  }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range Validate(f).Warnings() {
		if strings.Contains(w.Message, "allows and denies") {
			t.Fatalf("disjoint patterns flagged as conflict: %s", w)
		}
	}
}

// Failsafe-only and break-glass-only states get distinct warning
// classes, matching the verifier's reachability classification.
func TestValidateReachabilityClasses(t *testing.T) {
	src := `
states { run limp depot vault }
initial run
failsafe limp
permissions { P }
state_per { run: P }
per_rules { P { allow read /etc/** } }
transitions {
  run -> run on tick
  limp -> depot on towed
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	vr := Validate(f)
	if !vr.OK() {
		t.Fatalf("unexpected errors: %v", vr.Errors())
	}
	byState := make(map[string]string)
	for _, w := range vr.Warnings() {
		for _, s := range []string{"limp", "depot", "vault"} {
			if strings.Contains(w.Message, "state "+s+" ") || strings.Contains(w.Message, "state "+s+"'") ||
				strings.Contains(w.Message, quoteIdent(s)+" is") {
				byState[s] += w.Message + "\n"
			}
		}
	}
	// limp is the failsafe root itself: entered by the watchdog, by design,
	// so no reachability warning.
	if strings.Contains(byState["limp"], "reachable") || strings.Contains(byState["limp"], "unreachable") {
		t.Errorf("failsafe root should not draw a reachability warning: %s", byState["limp"])
	}
	// depot is reachable only after degradation pins limp.
	if !strings.Contains(byState["depot"], "failsafe degradation") {
		t.Errorf("depot should be flagged failsafe-only, got: %s", byState["depot"])
	}
	// vault has no event path at all: unreachable, break-glass territory.
	if !strings.Contains(byState["vault"], "unreachable") || !strings.Contains(byState["vault"], "break-glass") {
		t.Errorf("vault should be flagged unreachable/break-glass-only, got: %s", byState["vault"])
	}

	// The compiled classification — the verifier's ground truth — agrees.
	c, _, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]EntryKind{
		"run": EntryNormal, "limp": EntryFailsafe,
		"depot": EntryFailsafe, "vault": EntryBreakGlass,
	}
	got := c.Reachability()
	for s, k := range want {
		if got[s] != k {
			t.Errorf("Reachability[%s] = %v, want %v", s, got[s], k)
		}
	}
}

// A state composing more rules than the matcher bound compiles with a
// visible warning instead of a silent downgrade to the walk engine.
func TestCompileOversizedStateWarns(t *testing.T) {
	old := maxMatcherRules
	maxMatcherRules = 2
	defer func() { maxMatcherRules = old }()

	src := `
states { a }
initial a
permissions { P }
state_per { a: P }
per_rules {
  P {
    allow read /a
    allow read /b
    allow read /c
  }
}
`
	c, vr, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.StateSets["a"].Matcher() != nil {
		t.Fatal("matcher built beyond the bound")
	}
	found := false
	for _, w := range vr.Warnings() {
		if strings.Contains(w.Message, "matcher bound") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no matcher-bound warning in %v", vr.Warnings())
	}
	// The walk engine still decides correctly.
	if ok, _ := c.StateSets["a"].Decide("", "/b", sys.MayRead); !ok {
		t.Fatal("walk fallback broken")
	}
}
