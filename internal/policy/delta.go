package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// BundleDelta carries a policy revision as an edit script against a
// base revision the vehicle already holds, instead of the full bundle
// body. Policy bases evolve by localized rule edits, so the script is
// usually a few lines where the full body is kilobytes.
//
// The delta is a pure transport optimization: applying it to the base
// reconstructs the full bundle byte-identically, including the
// signature headers, so the vehicle runs exactly the same checksum and
// signature verification it runs on a full download. A delta is never
// trusted on its own — a vehicle whose base does not match BaseChecksum
// falls back to a full fetch.
type BundleDelta struct {
	Group          string // vehicle group both revisions belong to
	FromGeneration uint64 // generation the script applies on top of
	ToGeneration   uint64 // generation the script reconstructs

	// BaseChecksum fingerprints the base body (source + invariants in
	// wire form) the ops index into; a vehicle holding any other base
	// must not attempt the apply.
	BaseChecksum string

	// Ops rebuild the target body (source + invariants in wire form)
	// from the base. Result bytes must hash to the target bundle's
	// checksums — Apply re-derives and verifies them.
	Ops []DeltaOp

	// Header fields of the target bundle, carried verbatim so Apply can
	// reconstruct the complete signed Bundle. Checksum covers the
	// reconstructed source; the signature is the full bundle's detached
	// signature, unchanged.
	Checksum  string
	KeyID     string
	SigAlg    string
	Signature string
}

// DeltaOp is one edit-script step: either copy a run of base lines or
// insert literal bytes. Lines are split inclusive of their '\n'
// terminators, so concatenating copies and inserts is exact.
type DeltaOp struct {
	// Copy: Start/N index whole lines of the base body.
	Start, N int
	// Insert: literal bytes (only meaningful when N == 0).
	Insert string
}

// splitLinesKeepEnds splits s into lines that keep their trailing
// newline, so the concatenation of any subset round-trips exactly.
// A final unterminated fragment is its own line.
func splitLinesKeepEnds(s string) []string {
	if s == "" {
		return nil
	}
	var lines []string
	for len(s) > 0 {
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			lines = append(lines, s)
			break
		}
		lines = append(lines, s[:i+1])
		s = s[i+1:]
	}
	return lines
}

// ComputeBundleDelta builds the edit script that turns base's body into
// next's body. Both bundles must belong to the same group. The script
// is a common-prefix/common-suffix line trim — exactly the shape of a
// localized rule edit — with one insert op for the changed middle. When
// the bodies are unrelated the "delta" degenerates to a single insert
// of the whole target, and callers should compare EncodedSize against
// the full bundle before serving it.
func ComputeBundleDelta(base, next Bundle) (BundleDelta, error) {
	if base.Group != next.Group {
		return BundleDelta{}, fmt.Errorf("policy: delta across groups %q and %q", base.Group, next.Group)
	}
	baseBody := JoinSourceInvariants(base.Source, base.Invariants)
	nextBody := JoinSourceInvariants(next.Source, next.Invariants)

	from := splitLinesKeepEnds(baseBody)
	to := splitLinesKeepEnds(nextBody)

	// Trim matching prefix, then matching suffix of what remains.
	prefix := 0
	for prefix < len(from) && prefix < len(to) && from[prefix] == to[prefix] {
		prefix++
	}
	suffix := 0
	for suffix < len(from)-prefix && suffix < len(to)-prefix &&
		from[len(from)-1-suffix] == to[len(to)-1-suffix] {
		suffix++
	}

	var ops []DeltaOp
	if prefix > 0 {
		ops = append(ops, DeltaOp{Start: 0, N: prefix})
	}
	if mid := to[prefix : len(to)-suffix]; len(mid) > 0 {
		ops = append(ops, DeltaOp{Insert: strings.Join(mid, "")})
	}
	if suffix > 0 {
		ops = append(ops, DeltaOp{Start: len(from) - suffix, N: suffix})
	}

	return BundleDelta{
		Group:          next.Group,
		FromGeneration: base.Generation,
		ToGeneration:   next.Generation,
		BaseChecksum:   ChecksumSource(baseBody),
		Ops:            ops,
		Checksum:       next.Checksum,
		KeyID:          next.KeyID,
		SigAlg:         next.SigAlg,
		Signature:      next.Signature,
	}, nil
}

// Apply reconstructs the full target bundle from the base the vehicle
// already holds. It verifies the base fingerprint before applying and
// the reconstructed source checksum after, so a stale or corrupted
// base can never produce a silently wrong policy. Signature
// verification is the caller's job, exactly as for a full download —
// the reconstructed bundle's SignedPayload is byte-identical to the
// published one.
func (d BundleDelta) Apply(base Bundle) (Bundle, error) {
	if base.Group != d.Group {
		return Bundle{}, fmt.Errorf("policy: delta for group %q applied to base of group %q", d.Group, base.Group)
	}
	if base.Generation != d.FromGeneration {
		return Bundle{}, fmt.Errorf("policy: delta from generation %d applied to base generation %d", d.FromGeneration, base.Generation)
	}
	baseBody := JoinSourceInvariants(base.Source, base.Invariants)
	if got := ChecksumSource(baseBody); got != d.BaseChecksum {
		return Bundle{}, fmt.Errorf("policy: delta base checksum mismatch: want %s, have %s", d.BaseChecksum, got)
	}
	lines := splitLinesKeepEnds(baseBody)
	var sb strings.Builder
	for _, op := range d.Ops {
		if op.N == 0 {
			sb.WriteString(op.Insert)
			continue
		}
		if op.Start < 0 || op.N < 0 || op.Start+op.N > len(lines) {
			return Bundle{}, fmt.Errorf("policy: delta copy [%d,+%d) outside base of %d lines", op.Start, op.N, len(lines))
		}
		for _, ln := range lines[op.Start : op.Start+op.N] {
			sb.WriteString(ln)
		}
	}
	src, inv := SplitSourceInvariants(sb.String())
	out := Bundle{
		Group:      d.Group,
		Generation: d.ToGeneration,
		Checksum:   d.Checksum,
		Source:     src,
		Invariants: inv,
		KeyID:      d.KeyID,
		SigAlg:     d.SigAlg,
		Signature:  d.Signature,
	}
	if got := ChecksumSource(out.Source); got != out.Checksum {
		return Bundle{}, fmt.Errorf("policy: delta reconstruction checksum mismatch: header %s, body %s", out.Checksum, got)
	}
	return out, nil
}

// deltaMagic heads the delta wire encoding.
const deltaMagic = "SACK-DELTA/1"

// Encode renders the delta in a text wire format shaped like the
// bundle's: a header block, a separator, then the op stream. Copy ops
// are `c <start> <n>` lines; insert ops are `i <byteLen>` followed by
// exactly that many literal bytes (no framing inside, so inserts may
// contain anything).
func (d BundleDelta) Encode() []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", deltaMagic)
	fmt.Fprintf(&sb, "group: %s\n", d.Group)
	fmt.Fprintf(&sb, "from-generation: %d\n", d.FromGeneration)
	fmt.Fprintf(&sb, "to-generation: %d\n", d.ToGeneration)
	fmt.Fprintf(&sb, "base-checksum: %s\n", d.BaseChecksum)
	fmt.Fprintf(&sb, "checksum: %s\n", d.Checksum)
	if d.Signature != "" {
		fmt.Fprintf(&sb, "key-id: %s\n", d.KeyID)
		fmt.Fprintf(&sb, "sig-alg: %s\n", d.SigAlg)
		fmt.Fprintf(&sb, "signature: %s\n", d.Signature)
	}
	sb.WriteString("---\n")
	for _, op := range d.Ops {
		if op.N > 0 {
			fmt.Fprintf(&sb, "c %d %d\n", op.Start, op.N)
		} else {
			fmt.Fprintf(&sb, "i %d\n", len(op.Insert))
			sb.WriteString(op.Insert)
		}
	}
	return []byte(sb.String())
}

// EncodedSize reports the wire size of the encoded delta without
// materializing it, so the server can choose delta vs full per fetch.
func (d BundleDelta) EncodedSize() int { return len(d.Encode()) }

// DecodeBundleDelta parses the delta wire format.
func DecodeBundleDelta(data []byte) (BundleDelta, error) {
	text := string(data)
	header, body, found := strings.Cut(text, "\n---\n")
	if !found {
		return BundleDelta{}, fmt.Errorf("policy: delta missing header separator")
	}
	lines := strings.Split(header, "\n")
	if len(lines) == 0 || lines[0] != deltaMagic {
		return BundleDelta{}, fmt.Errorf("policy: not a %s delta", deltaMagic)
	}
	var d BundleDelta
	for _, line := range lines[1:] {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return BundleDelta{}, fmt.Errorf("policy: bad delta header line %q", line)
		}
		val = strings.TrimSpace(val)
		switch key {
		case "group":
			d.Group = val
		case "from-generation":
			gen, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return BundleDelta{}, fmt.Errorf("policy: bad delta from-generation %q", val)
			}
			d.FromGeneration = gen
		case "to-generation":
			gen, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return BundleDelta{}, fmt.Errorf("policy: bad delta to-generation %q", val)
			}
			d.ToGeneration = gen
		case "base-checksum":
			d.BaseChecksum = val
		case "checksum":
			d.Checksum = val
		case "key-id":
			d.KeyID = val
		case "sig-alg":
			d.SigAlg = val
		case "signature":
			d.Signature = val
		default:
			// Unknown headers are ignored for forward compatibility.
		}
	}
	if d.BaseChecksum == "" || d.Checksum == "" {
		return BundleDelta{}, fmt.Errorf("policy: delta missing checksum headers")
	}
	for len(body) > 0 {
		line, rest, ok := strings.Cut(body, "\n")
		if !ok {
			return BundleDelta{}, fmt.Errorf("policy: truncated delta op %q", line)
		}
		fields := strings.Fields(line)
		switch {
		case len(fields) == 3 && fields[0] == "c":
			start, err1 := strconv.Atoi(fields[1])
			n, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || start < 0 || n <= 0 {
				return BundleDelta{}, fmt.Errorf("policy: bad delta copy op %q", line)
			}
			d.Ops = append(d.Ops, DeltaOp{Start: start, N: n})
			body = rest
		case len(fields) == 2 && fields[0] == "i":
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 || n > len(rest) {
				return BundleDelta{}, fmt.Errorf("policy: bad delta insert op %q", line)
			}
			d.Ops = append(d.Ops, DeltaOp{Insert: rest[:n]})
			body = rest[n:]
		default:
			return BundleDelta{}, fmt.Errorf("policy: bad delta op line %q", line)
		}
	}
	return d, nil
}
