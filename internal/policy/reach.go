package policy

// Reachability classification shared by the validator and the symbolic
// verifier (internal/verify). Both must agree on which states normal
// operation can ever occupy — the validator warns about the dead ones,
// the verifier scopes `always`/`reachable` invariants to the live ones —
// so the classification lives here, once, and the verifier's set is the
// validator's ground truth by construction.

// EntryKind classifies the strongest mechanism able to enter a state.
type EntryKind int

// Entry kinds, ordered from normal operation to most exceptional.
const (
	// EntryNormal: reachable from the initial state via declared event
	// transitions alone.
	EntryNormal EntryKind = iota
	// EntryFailsafe: only enterable after the pipeline watchdog degrades
	// the machine to the failsafe state (directly, or via transitions
	// leaving it).
	EntryFailsafe
	// EntryBreakGlass: no event path reaches it even through failsafe
	// degradation; only a CAP_MAC_ADMIN break-glass force can enter it.
	EntryBreakGlass
)

func (k EntryKind) String() string {
	switch k {
	case EntryNormal:
		return "normal"
	case EntryFailsafe:
		return "failsafe-only"
	default:
		return "break-glass-only"
	}
}

// classifyReachability runs the shared BFS: states reachable from the
// initial state are EntryNormal; states additionally reachable once the
// failsafe root is granted are EntryFailsafe; everything else declared
// is EntryBreakGlass (ForceState accepts any declared state).
func classifyReachability(states []string, initial, failsafe string, adjacency map[string][]string) map[string]EntryKind {
	bfs := func(roots ...string) map[string]bool {
		seen := make(map[string]bool)
		var queue []string
		for _, root := range roots {
			if root != "" && !seen[root] {
				seen[root] = true
				queue = append(queue, root)
			}
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range adjacency[cur] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		return seen
	}

	normal := bfs(initial)
	withFailsafe := normal
	if failsafe != "" {
		withFailsafe = bfs(initial, failsafe)
	}

	out := make(map[string]EntryKind, len(states))
	for _, s := range states {
		switch {
		case normal[s]:
			out[s] = EntryNormal
		case withFailsafe[s]:
			out[s] = EntryFailsafe
		default:
			out[s] = EntryBreakGlass
		}
	}
	return out
}

// Reachability classifies every declared state of the compiled policy.
// The verifier uses this as its reachability ground truth; Validate
// derives its dead-state warnings from the same classification.
func (c *Compiled) Reachability() map[string]EntryKind {
	adjacency := make(map[string][]string)
	for _, t := range c.Transitions {
		adjacency[t.From] = append(adjacency[t.From], t.To)
	}
	return classifyReachability(c.StateNames(), c.Initial, c.Failsafe, adjacency)
}
