package policy

import (
	"strings"
	"testing"
)

const failsafeSrc = `
states { normal = 0, emergency = 1, lockdown = 2 }
initial normal
failsafe lockdown

permissions { P }
state_per {
  normal:    P
  emergency: P
  lockdown:  P
}
per_rules {
  P { allow read /dev/vehicle/** }
}
transitions {
  normal -> emergency on crash_detected
  emergency -> normal on all_clear
  lockdown -> normal on all_clear
}
`

func TestFailsafeParsesAndCompiles(t *testing.T) {
	c, vr, err := Load(failsafeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !vr.OK() {
		t.Fatalf("validation: %v", vr.Err())
	}
	if c.Failsafe != "lockdown" {
		t.Fatalf("failsafe = %q", c.Failsafe)
	}
}

func TestFailsafeUndeclaredStateIsError(t *testing.T) {
	src := strings.Replace(failsafeSrc, "failsafe lockdown", "failsafe warp_core", 1)
	_, vr, err := Load(src)
	if err == nil {
		t.Fatal("undeclared failsafe state compiled")
	}
	found := false
	for _, issue := range vr.Errors() {
		if strings.Contains(issue.Message, "failsafe state") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no failsafe finding in %v", vr.Issues)
	}
}

func TestFailsafeDuplicateIsParseError(t *testing.T) {
	src := strings.Replace(failsafeSrc, "failsafe lockdown", "failsafe lockdown\nfailsafe normal", 1)
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "duplicate 'failsafe'") {
		t.Fatalf("duplicate failsafe: %v", err)
	}
}

func TestFailsafeFormatRoundTrip(t *testing.T) {
	f, err := Parse(failsafeSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(f)
	if !strings.Contains(text, "failsafe lockdown\n") {
		t.Fatalf("format lost failsafe:\n%s", text)
	}
	again, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parsing formatted text: %v", err)
	}
	if again.Failsafe != "lockdown" {
		t.Fatalf("round trip failsafe = %q", again.Failsafe)
	}
}

func TestFailsafeDiff(t *testing.T) {
	withFS, _, err := Load(failsafeSrc)
	if err != nil {
		t.Fatal(err)
	}
	withoutFS, _, err := Load(strings.Replace(failsafeSrc, "failsafe lockdown\n", "", 1))
	if err != nil {
		t.Fatal(err)
	}
	changes := Diff(withoutFS, withFS)
	found := false
	for _, c := range changes {
		if c.Kind == "failsafe" && strings.Contains(c.Detail, "(none) -> lockdown") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failsafe change missing from diff: %v", changes)
	}
	if n := len(Diff(withFS, withFS)); n != 0 {
		t.Fatalf("self-diff has %d changes", n)
	}
}
