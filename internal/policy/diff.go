package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Change is one difference between two compiled policies.
type Change struct {
	Kind   string // "state", "permission", "rule", "transition", "initial", "failsafe"
	Action string // "added", "removed", "changed"
	Detail string
}

// String renders "rule added: ...".
func (c Change) String() string {
	return fmt.Sprintf("%s %s: %s", c.Kind, c.Action, c.Detail)
}

// Diff compares two compiled policies and reports the changes an
// administrator should review before a reload: states and permissions
// appearing or vanishing, per-state rule set deltas, and transition
// graph edits. Deterministic ordering.
func Diff(old, new *Compiled) []Change {
	var out []Change

	// Initial state.
	if old.Initial != new.Initial {
		out = append(out, Change{Kind: "initial", Action: "changed",
			Detail: fmt.Sprintf("%s -> %s", old.Initial, new.Initial)})
	}

	// Failsafe state.
	if old.Failsafe != new.Failsafe {
		from, to := old.Failsafe, new.Failsafe
		if from == "" {
			from = "(none)"
		}
		if to == "" {
			to = "(none)"
		}
		out = append(out, Change{Kind: "failsafe", Action: "changed",
			Detail: fmt.Sprintf("%s -> %s", from, to)})
	}

	// States (by name; encodings compared for survivors).
	oldStates := map[string]uint32{}
	for _, s := range old.States {
		oldStates[s.Name] = s.Encoding
	}
	newStates := map[string]uint32{}
	for _, s := range new.States {
		newStates[s.Name] = s.Encoding
	}
	for _, name := range sortedKeys(oldStates) {
		if _, ok := newStates[name]; !ok {
			out = append(out, Change{Kind: "state", Action: "removed", Detail: name})
		}
	}
	for _, name := range sortedKeys(newStates) {
		if oldEnc, ok := oldStates[name]; !ok {
			out = append(out, Change{Kind: "state", Action: "added", Detail: name})
		} else if oldEnc != newStates[name] {
			out = append(out, Change{Kind: "state", Action: "changed",
				Detail: fmt.Sprintf("%s encoding %d -> %d", name, oldEnc, newStates[name])})
		}
	}

	// Permissions.
	oldPerms := toSet(old.Permissions)
	newPerms := toSet(new.Permissions)
	for _, p := range sortedKeys(oldPerms) {
		if !newPerms[p] {
			out = append(out, Change{Kind: "permission", Action: "removed", Detail: p})
		}
	}
	for _, p := range sortedKeys(newPerms) {
		if !oldPerms[p] {
			out = append(out, Change{Kind: "permission", Action: "added", Detail: p})
		}
	}

	// Per-state effective rule sets (the operational meaning of the
	// policy): compare canonical rule strings.
	states := sortedKeys(newStates)
	for _, name := range sortedKeys(oldStates) {
		if _, ok := newStates[name]; !ok {
			continue // removal already reported
		}
	}
	for _, name := range states {
		oldRS, okOld := old.StateSets[name]
		newRS := new.StateSets[name]
		if !okOld {
			continue // addition already reported; its rules are all new
		}
		oldRules := ruleStrings(oldRS)
		newRules := ruleStrings(newRS)
		for _, r := range missingFrom(oldRules, newRules) {
			out = append(out, Change{Kind: "rule", Action: "removed",
				Detail: fmt.Sprintf("state %s: %s", name, r)})
		}
		for _, r := range missingFrom(newRules, oldRules) {
			out = append(out, Change{Kind: "rule", Action: "added",
				Detail: fmt.Sprintf("state %s: %s", name, r)})
		}
	}

	// Transitions.
	oldTrans := transitionSet(old)
	newTrans := transitionSet(new)
	for _, tr := range sortedKeys(oldTrans) {
		if !newTrans[tr] {
			out = append(out, Change{Kind: "transition", Action: "removed", Detail: tr})
		}
	}
	for _, tr := range sortedKeys(newTrans) {
		if !oldTrans[tr] {
			out = append(out, Change{Kind: "transition", Action: "added", Detail: tr})
		}
	}
	return out
}

// DiffReport packages the changes of one policy replacement, as applied
// by a reload commit: the caller gets back the exact delta the kernel
// installed, not merely the delta it requested.
type DiffReport struct {
	Changes []Change
}

// Report wraps a change list in a DiffReport.
func Report(changes []Change) DiffReport { return DiffReport{Changes: changes} }

// Empty reports whether the two policies were equivalent.
func (r DiffReport) Empty() bool { return len(r.Changes) == 0 }

// Summary condenses the report into one line ("no changes" or e.g.
// "5 changes: 2 added, 2 removed, 1 changed").
func (r DiffReport) Summary() string {
	if r.Empty() {
		return "no changes"
	}
	var added, removed, changed int
	for _, c := range r.Changes {
		switch c.Action {
		case "added":
			added++
		case "removed":
			removed++
		case "changed":
			changed++
		}
	}
	parts := make([]string, 0, 3)
	if added > 0 {
		parts = append(parts, fmt.Sprintf("%d added", added))
	}
	if removed > 0 {
		parts = append(parts, fmt.Sprintf("%d removed", removed))
	}
	if changed > 0 {
		parts = append(parts, fmt.Sprintf("%d changed", changed))
	}
	return fmt.Sprintf("%d changes: %s", len(r.Changes), strings.Join(parts, ", "))
}

// String renders the full change list, one per line.
func (r DiffReport) String() string { return FormatDiff(r.Changes) }

// FormatDiff renders changes one per line (empty string for none).
func FormatDiff(changes []Change) string {
	if len(changes) == 0 {
		return ""
	}
	var b strings.Builder
	for _, c := range changes {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func toSet(xs []string) map[string]bool {
	out := make(map[string]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func ruleStrings(rs *RuleSet) map[string]bool {
	out := map[string]bool{}
	if rs == nil {
		return out
	}
	for _, r := range rs.Rules() {
		out[r.String()] = true
	}
	return out
}

// missingFrom returns the sorted keys of a that are absent from b.
func missingFrom(a, b map[string]bool) []string {
	var out []string
	for k := range a {
		if !b[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func transitionSet(c *Compiled) map[string]bool {
	out := map[string]bool{}
	for _, t := range c.Transitions {
		out[fmt.Sprintf("%s -> %s on %s", t.From, t.To, t.Event)] = true
	}
	return out
}
