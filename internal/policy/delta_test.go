package policy

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// testSigner is a stand-in for internal/sign.Signer (policy cannot
// import sign); the signature is deterministic in the payload so the
// test can verify the reconstructed bundle signs identically.
type testSigner struct{}

func (testSigner) KeyID() string     { return "delta-test" }
func (testSigner) Algorithm() string { return "hmac-sha256" }
func (testSigner) Sign(payload []byte) []byte {
	sum := []byte(ChecksumSource("sig:" + string(payload)))
	return sum[:16]
}

func policyLines(rng *rand.Rand, n int) []string {
	states := []string{"parked", "driving", "charging", "valet"}
	objs := []string{"/dev/vehicle/door0", "/dev/vehicle/speed", "/etc/vehicle/ota.conf", "/dev/ecu/*"}
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("    allow %s read %s", states[rng.Intn(len(states))], objs[rng.Intn(len(objs))])
	}
	return lines
}

func mutateLines(rng *rand.Rand, lines []string) []string {
	out := append([]string(nil), lines...)
	edits := 1 + rng.Intn(3)
	for e := 0; e < edits; e++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(out) > 0: // delete a line
			i := rng.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		case op == 1: // insert a line
			i := rng.Intn(len(out) + 1)
			out = append(out[:i], append([]string{fmt.Sprintf("    allow parked ioctl /dev/vehicle/new%d", rng.Intn(100))}, out[i:]...)...)
		case len(out) > 0: // replace a line
			out[rng.Intn(len(out))] = fmt.Sprintf("    deny driving write /dev/vehicle/mut%d", rng.Intn(100))
		}
	}
	return out
}

func TestBundleDeltaApplyByteIdentical(t *testing.T) {
	base := NewBundle("fleet-a", 7, "state parked {\n    allow read /dev/vehicle/door0\n}\n").
		WithInvariants("invariant door-stays\n").Signed(testSigner{})
	next := NewBundle("fleet-a", 8, "state parked {\n    allow read /dev/vehicle/door0\n    allow ioctl /dev/vehicle/door1\n}\n").
		WithInvariants("invariant door-stays\n").Signed(testSigner{})

	d, err := ComputeBundleDelta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), next.Encode()) {
		t.Fatalf("reconstructed bundle differs from published:\n got %q\nwant %q", got.Encode(), next.Encode())
	}
	// The reconstructed bundle must verify like the full download: the
	// signature over the published SignedPayload must match a fresh
	// signature over the reconstructed SignedPayload.
	if !bytes.Equal(testSigner{}.Sign(got.SignedPayload()), got.SignatureBytes()) {
		t.Fatal("signature does not verify over the reconstructed bundle")
	}
	if d.EncodedSize() >= len(next.Encode()) {
		t.Fatalf("delta (%d bytes) not smaller than full bundle (%d bytes) for a one-line edit",
			d.EncodedSize(), len(next.Encode()))
	}
}

// TestBundleDeltaFuzz is the delta half of the differential fuzz
// satellite: random base policies with random localized edits must
// round-trip compute → encode → decode → apply into the exact bytes of
// the published bundle, with checksum and signature intact.
func TestBundleDeltaFuzz(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		baseLines := policyLines(rng, 5+rng.Intn(60))
		baseSrc := "state all {\n" + strings.Join(baseLines, "\n") + "\n}\n"
		nextSrc := "state all {\n" + strings.Join(mutateLines(rng, baseLines), "\n") + "\n}\n"
		inv := ""
		if rng.Intn(2) == 0 {
			inv = "invariant baseline\n"
		}
		base := NewBundle("g", uint64(seed+1), baseSrc).WithInvariants(inv).Signed(testSigner{})
		next := NewBundle("g", uint64(seed+2), nextSrc).WithInvariants(inv).Signed(testSigner{})

		d, err := ComputeBundleDelta(base, next)
		if err != nil {
			t.Fatalf("seed %d: compute: %v", seed, err)
		}
		decoded, err := DecodeBundleDelta(d.Encode())
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		got, err := decoded.Apply(base)
		if err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if !bytes.Equal(got.Encode(), next.Encode()) {
			t.Fatalf("seed %d: reconstruction differs from published bundle", seed)
		}
		if !bytes.Equal(testSigner{}.Sign(got.SignedPayload()), got.SignatureBytes()) {
			t.Fatalf("seed %d: signature does not verify on reconstruction", seed)
		}
	}
}

func TestBundleDeltaRejectsWrongBase(t *testing.T) {
	base := NewBundle("g", 1, "state a {\n    allow read /x\n}\n")
	next := NewBundle("g", 2, "state a {\n    allow read /y\n}\n")
	other := NewBundle("g", 1, "state a {\n    allow read /z\n}\n")
	stale := NewBundle("g", 3, next.Source)

	d, err := ComputeBundleDelta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(other); err == nil {
		t.Fatal("apply over a different base body must fail the base checksum")
	}
	if _, err := d.Apply(stale); err == nil {
		t.Fatal("apply over a different base generation must fail")
	}
	wrongGroup := base
	wrongGroup.Group = "h"
	if _, err := d.Apply(wrongGroup); err == nil {
		t.Fatal("apply over a different group must fail")
	}

	// A tampered target checksum must be caught after reconstruction.
	bad := d
	bad.Checksum = ChecksumSource("something else")
	if _, err := bad.Apply(base); err == nil {
		t.Fatal("apply with tampered target checksum must fail")
	}
}

func TestDecodeBundleDeltaRejectsGarbage(t *testing.T) {
	base := NewBundle("g", 1, "state a {\n    allow read /x\n}\n")
	next := NewBundle("g", 2, "state a {\n    allow read /y\n}\n")
	d, _ := ComputeBundleDelta(base, next)
	good := d.Encode()

	cases := [][]byte{
		nil,
		[]byte("not a delta"),
		[]byte("SACK-DELTA/1\ngroup: g\n---\nz 1 2\n"),  // unknown op
		[]byte("SACK-DELTA/1\ngroup: g\n---\ni 999\nx"), // insert longer than body
		good[:len(good)-1], // truncated final insert
	}
	for i, c := range cases {
		if _, err := DecodeBundleDelta(c); err == nil {
			t.Fatalf("case %d: malformed delta decoded without error", i)
		}
	}
	if _, err := DecodeBundleDelta(good); err != nil {
		t.Fatalf("control: valid delta failed to decode: %v", err)
	}
}

func TestBundleDeltaUnrelatedBodiesStillCorrect(t *testing.T) {
	base := NewBundle("g", 1, "state a {\n    allow read /x\n}\n")
	next := NewBundle("g", 2, "state totally {\n    deny write /different\n}\n")
	d, err := ComputeBundleDelta(base, next)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), next.Encode()) {
		t.Fatal("unrelated-body delta must still reconstruct exactly")
	}
}
