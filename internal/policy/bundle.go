package policy

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Bundle is one versioned, checksummed policy revision as distributed
// by the fleet control plane. The generation is assigned by the fleet
// server's registry (monotonic per vehicle group); the checksum covers
// the policy source so a vehicle can verify a download end-to-end
// before handing it to the reload transaction.
type Bundle struct {
	Group      string // vehicle group the bundle is assigned to
	Generation uint64 // monotonic per group, assigned at publish time
	Checksum   string // hex SHA-256 of Source
	Source     string // SACK policy text

	// Invariants optionally carries a verify-grammar invariant set
	// versioned with the policy (see internal/verify): fleets publish the
	// safety properties alongside the rules they constrain, and the
	// registry re-proves them at every publish. Empty means none.
	Invariants string

	// Detached signature section (see internal/sign). The control plane
	// signs SignedPayload() — the canonical unsigned encoding, which
	// includes the generation, so a replayed older bundle fails
	// verification even with an intact signature. An unsigned bundle
	// (all three empty) encodes byte-identically to the pre-signature
	// wire format.
	KeyID     string // names the signing key in the consumer's keyring
	SigAlg    string // sign.AlgHMACSHA256 or sign.AlgEd25519
	Signature string // hex detached signature over SignedPayload()

	// Compiled is the enforcement-ready artifact for Source, populated by
	// the registry at publish time so in-process consumers (the fleet
	// agent's apply path) skip re-validating and re-compiling per vehicle.
	// It never crosses the wire: Encode omits it and DecodeBundle leaves
	// it nil — the HTTP path compiles locally once after checksum
	// verification. Consumers must treat it as immutable.
	Compiled *Compiled
}

// bundleMagic heads the wire encoding; the version suffix lets the
// format evolve without breaking deployed agents.
const bundleMagic = "SACK-BUNDLE/1"

// invariantsSeparator splits the policy source from the optional
// invariants section in the wire encoding. Bundles without invariants
// encode exactly as before this section existed.
const invariantsSeparator = "\n--- invariants ---\n"

// Checksum fingerprints policy source for bundle integrity checks.
func ChecksumSource(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// NewBundle builds a bundle for a policy revision, computing its
// checksum. It does not validate the policy text — the registry does
// that at publish time, and the vehicle again at apply time.
func NewBundle(group string, generation uint64, src string) Bundle {
	return Bundle{Group: group, Generation: generation, Checksum: ChecksumSource(src), Source: src}
}

// WithInvariants returns a copy of the bundle carrying an invariant
// set. The set rides inside the same wire envelope (its own section and
// checksum), so policy and safety properties version together.
func (b Bundle) WithInvariants(invariants string) Bundle {
	b.Invariants = invariants
	return b
}

// ETag is the HTTP-style entity tag of the bundle revision —
// generation plus a checksum prefix, so both a rollback (same
// generation, different content would be a registry bug) and a
// republish are visible as a tag change.
func (b Bundle) ETag() string {
	ck := b.Checksum
	if len(ck) > 12 {
		ck = ck[:12]
	}
	return fmt.Sprintf("g%d-%s", b.Generation, ck)
}

// Encode renders the bundle in its wire format: a fixed header
// (magic, group, generation, checksum), a separator line, and the raw
// policy source.
func (b Bundle) Encode() []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", bundleMagic)
	fmt.Fprintf(&sb, "group: %s\n", b.Group)
	fmt.Fprintf(&sb, "generation: %d\n", b.Generation)
	fmt.Fprintf(&sb, "checksum: %s\n", b.Checksum)
	if b.Invariants != "" {
		fmt.Fprintf(&sb, "invariants-checksum: %s\n", ChecksumSource(b.Invariants))
	}
	if b.Signature != "" {
		fmt.Fprintf(&sb, "key-id: %s\n", b.KeyID)
		fmt.Fprintf(&sb, "sig-alg: %s\n", b.SigAlg)
		fmt.Fprintf(&sb, "signature: %s\n", b.Signature)
	}
	sb.WriteString("---\n")
	sb.WriteString(b.Source)
	if b.Invariants != "" {
		sb.WriteString(invariantsSeparator)
		sb.WriteString(b.Invariants)
	}
	return []byte(sb.String())
}

// DecodeBundle parses the wire format and verifies the checksum
// against the carried source, so transport corruption or a tampered
// body is caught before the policy ever reaches a vehicle's reload
// path.
func DecodeBundle(data []byte) (Bundle, error) {
	text := string(data)
	header, source, found := strings.Cut(text, "\n---\n")
	if !found {
		return Bundle{}, fmt.Errorf("policy: bundle missing header separator")
	}
	lines := strings.Split(header, "\n")
	if len(lines) == 0 || lines[0] != bundleMagic {
		return Bundle{}, fmt.Errorf("policy: not a %s bundle", bundleMagic)
	}
	b := Bundle{Source: source}
	var wantInvSum string
	if src, inv, ok := strings.Cut(b.Source, invariantsSeparator); ok {
		b.Source, b.Invariants = src, inv
	}
	for _, line := range lines[1:] {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return Bundle{}, fmt.Errorf("policy: bad bundle header line %q", line)
		}
		val = strings.TrimSpace(val)
		switch key {
		case "group":
			b.Group = val
		case "generation":
			gen, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Bundle{}, fmt.Errorf("policy: bad bundle generation %q", val)
			}
			b.Generation = gen
		case "checksum":
			b.Checksum = val
		case "invariants-checksum":
			wantInvSum = val
		case "key-id":
			b.KeyID = val
		case "sig-alg":
			b.SigAlg = val
		case "signature":
			if _, err := hex.DecodeString(val); err != nil {
				return Bundle{}, fmt.Errorf("policy: bad bundle signature encoding: %v", err)
			}
			b.Signature = val
		default:
			// Unknown headers are ignored for forward compatibility.
		}
	}
	if b.Checksum == "" {
		return Bundle{}, fmt.Errorf("policy: bundle missing checksum")
	}
	if got := ChecksumSource(b.Source); got != b.Checksum {
		return Bundle{}, fmt.Errorf("policy: bundle checksum mismatch: header %s, body %s", b.Checksum, got)
	}
	if wantInvSum != "" || b.Invariants != "" {
		if got := ChecksumSource(b.Invariants); got != wantInvSum {
			return Bundle{}, fmt.Errorf("policy: bundle invariants checksum mismatch: header %q, body %s", wantInvSum, got)
		}
	}
	return b, nil
}

// SignedPayload returns the canonical bytes a signature covers: the
// bundle's wire encoding with the signature section stripped. Signing
// the encoding (rather than just the source) binds group, generation,
// and invariants, so a signature cannot be transplanted onto a
// replayed generation or another group's bundle.
func (b Bundle) SignedPayload() []byte {
	b.KeyID, b.SigAlg, b.Signature = "", "", ""
	return b.Encode()
}

// SignatureBytes decodes the hex signature header (nil when unsigned).
func (b Bundle) SignatureBytes() []byte {
	if b.Signature == "" {
		return nil
	}
	sig, err := hex.DecodeString(b.Signature)
	if err != nil {
		return nil
	}
	return sig
}

// Signer is the subset of internal/sign.Signer the bundle layer needs;
// declared here so policy does not import sign.
type Signer interface {
	KeyID() string
	Algorithm() string
	Sign(payload []byte) []byte
}

// Signed returns a copy of the bundle carrying a detached signature
// from s over SignedPayload().
func (b Bundle) Signed(s Signer) Bundle {
	b.KeyID, b.SigAlg, b.Signature = "", "", ""
	sig := s.Sign(b.Encode())
	b.KeyID, b.SigAlg, b.Signature = s.KeyID(), s.Algorithm(), hex.EncodeToString(sig)
	return b
}

// JoinSourceInvariants packs policy source and an optional invariant
// set into one body using the bundle section separator — the form the
// fleetd publish endpoint accepts.
func JoinSourceInvariants(src, invariants string) string {
	if invariants == "" {
		return src
	}
	return src + invariantsSeparator + invariants
}

// SplitSourceInvariants is the inverse of JoinSourceInvariants.
func SplitSourceInvariants(body string) (src, invariants string) {
	src, invariants, _ = strings.Cut(body, invariantsSeparator)
	return src, invariants
}

