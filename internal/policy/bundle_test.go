package policy

import (
	"strings"
	"testing"
)

func TestBundleRoundTrip(t *testing.T) {
	src := "states { a = 0 }\ninitial a\n"
	b := NewBundle("default", 7, src)
	if b.Checksum != ChecksumSource(src) {
		t.Fatal("NewBundle checksum mismatch")
	}
	got, err := DecodeBundle(b.Encode())
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if got != b {
		t.Fatalf("round trip: %+v != %+v", got, b)
	}
	if !strings.HasPrefix(b.ETag(), "g7-") {
		t.Fatalf("etag = %q", b.ETag())
	}
	if NewBundle("default", 7, src+"\n").ETag() == b.ETag() {
		t.Fatal("etag ignores content changes")
	}
}

func TestBundleDecodeRejectsCorruption(t *testing.T) {
	b := NewBundle("default", 1, "states { a = 0 }\ninitial a\n")
	wire := b.Encode()

	// Flip a byte in the body: checksum mismatch.
	tampered := append([]byte(nil), wire...)
	tampered[len(tampered)-3] ^= 0x20
	if _, err := DecodeBundle(tampered); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered body: err = %v", err)
	}

	if _, err := DecodeBundle([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeBundle([]byte("WRONG-MAGIC\ngeneration: 1\n---\nx")); err == nil {
		t.Fatal("wrong magic decoded")
	}
	noCk := "SACK-BUNDLE/1\ngroup: g\ngeneration: 1\n---\nx"
	if _, err := DecodeBundle([]byte(noCk)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("missing checksum: err = %v", err)
	}
}

// stubSigner implements Signer without pulling internal/sign into the
// policy tests: the "signature" is a recognisable function of payload
// length so tampering shows up.
type stubSigner struct{ id string }

func (s stubSigner) KeyID() string     { return s.id }
func (s stubSigner) Algorithm() string { return "hmac-sha256" }
func (s stubSigner) Sign(payload []byte) []byte {
	return []byte{byte(len(payload)), byte(len(payload) >> 8), 0xAB}
}

func TestBundleSignatureRoundTrip(t *testing.T) {
	src := "states { a = 0 }\ninitial a\n"
	b := NewBundle("default", 9, src).Signed(stubSigner{id: "fleet-key-1"})
	if b.KeyID != "fleet-key-1" || b.SigAlg != "hmac-sha256" || b.Signature == "" {
		t.Fatalf("signed bundle fields: %+v", b)
	}
	got, err := DecodeBundle(b.Encode())
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if got != b {
		t.Fatalf("signed round trip: %+v != %+v", got, b)
	}
	// SignedPayload is stable across signing: the payload the verifier
	// recomputes from the decoded bundle equals what was signed.
	unsigned := NewBundle("default", 9, src)
	if string(got.SignedPayload()) != string(unsigned.Encode()) {
		t.Fatal("SignedPayload differs from the unsigned encoding")
	}
	if len(got.SignatureBytes()) != 3 {
		t.Fatalf("SignatureBytes = %x", got.SignatureBytes())
	}

	// An unsigned bundle encodes byte-identically to the legacy format:
	// no signature headers appear.
	wire := string(unsigned.Encode())
	for _, h := range []string{"key-id", "sig-alg", "signature"} {
		if strings.Contains(wire, h) {
			t.Fatalf("unsigned bundle wire format contains %q", h)
		}
	}

	// Malformed signature hex is rejected at decode.
	bad := strings.Replace(string(b.Encode()), "signature: ", "signature: zz", 1)
	if _, err := DecodeBundle([]byte(bad)); err == nil {
		t.Fatal("bad signature hex decoded")
	}
}

// The signed payload binds generation and group: re-encoding the same
// source under a different generation yields a different payload, so a
// replayed signature cannot cover it.
func TestBundleSignedPayloadBindsGeneration(t *testing.T) {
	src := "states { a = 0 }\ninitial a\n"
	p1 := NewBundle("g", 1, src).SignedPayload()
	p2 := NewBundle("g", 2, src).SignedPayload()
	if string(p1) == string(p2) {
		t.Fatal("payload does not bind generation")
	}
	q := NewBundle("other", 1, src).SignedPayload()
	if string(p1) == string(q) {
		t.Fatal("payload does not bind group")
	}
}

func TestBundleInvariantsRoundTrip(t *testing.T) {
	inv := "never /usr/bin/ivi write /dev/can/actuator*\nreachable parked\n"
	b := NewBundle("fleet-a", 3, "states { parked }\ninitial parked\n").WithInvariants(inv)
	got, err := DecodeBundle(b.Encode())
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if got.Invariants != inv {
		t.Fatalf("invariants round-trip: got %q, want %q", got.Invariants, inv)
	}
	if got.Source != b.Source || got.Checksum != b.Checksum {
		t.Fatalf("policy fields damaged by invariants section: %+v", got)
	}

	// A bundle without invariants encodes byte-identically to the
	// pre-invariants format.
	plain := NewBundle("fleet-a", 3, b.Source)
	if strings.Contains(string(plain.Encode()), "invariants") {
		t.Fatal("empty invariants must not change the wire format")
	}

	// Tampering with the invariants section is caught.
	tampered := strings.Replace(string(b.Encode()), "ivi", "IVI", 1)
	if _, err := DecodeBundle([]byte(tampered)); err == nil || !strings.Contains(err.Error(), "invariants checksum") {
		t.Fatalf("tampered invariants accepted: %v", err)
	}
}
