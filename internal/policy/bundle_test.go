package policy

import (
	"strings"
	"testing"
)

func TestBundleRoundTrip(t *testing.T) {
	src := "states { a = 0 }\ninitial a\n"
	b := NewBundle("default", 7, src)
	if b.Checksum != ChecksumSource(src) {
		t.Fatal("NewBundle checksum mismatch")
	}
	got, err := DecodeBundle(b.Encode())
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if got != b {
		t.Fatalf("round trip: %+v != %+v", got, b)
	}
	if !strings.HasPrefix(b.ETag(), "g7-") {
		t.Fatalf("etag = %q", b.ETag())
	}
	if NewBundle("default", 7, src+"\n").ETag() == b.ETag() {
		t.Fatal("etag ignores content changes")
	}
}

func TestBundleDecodeRejectsCorruption(t *testing.T) {
	b := NewBundle("default", 1, "states { a = 0 }\ninitial a\n")
	wire := b.Encode()

	// Flip a byte in the body: checksum mismatch.
	tampered := append([]byte(nil), wire...)
	tampered[len(tampered)-3] ^= 0x20
	if _, err := DecodeBundle(tampered); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered body: err = %v", err)
	}

	if _, err := DecodeBundle([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeBundle([]byte("WRONG-MAGIC\ngeneration: 1\n---\nx")); err == nil {
		t.Fatal("wrong magic decoded")
	}
	noCk := "SACK-BUNDLE/1\ngroup: g\ngeneration: 1\n---\nx"
	if _, err := DecodeBundle([]byte(noCk)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("missing checksum: err = %v", err)
	}
}

func TestBundleInvariantsRoundTrip(t *testing.T) {
	inv := "never /usr/bin/ivi write /dev/can/actuator*\nreachable parked\n"
	b := NewBundle("fleet-a", 3, "states { parked }\ninitial parked\n").WithInvariants(inv)
	got, err := DecodeBundle(b.Encode())
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if got.Invariants != inv {
		t.Fatalf("invariants round-trip: got %q, want %q", got.Invariants, inv)
	}
	if got.Source != b.Source || got.Checksum != b.Checksum {
		t.Fatalf("policy fields damaged by invariants section: %+v", got)
	}

	// A bundle without invariants encodes byte-identically to the
	// pre-invariants format.
	plain := NewBundle("fleet-a", 3, b.Source)
	if strings.Contains(string(plain.Encode()), "invariants") {
		t.Fatal("empty invariants must not change the wire format")
	}

	// Tampering with the invariants section is caught.
	tampered := strings.Replace(string(b.Encode()), "ivi", "IVI", 1)
	if _, err := DecodeBundle([]byte(tampered)); err == nil || !strings.Contains(err.Error(), "invariants checksum") {
		t.Fatalf("tampered invariants accepted: %v", err)
	}
}
