package policy

import (
	"strings"
	"testing"
)

func TestBundleRoundTrip(t *testing.T) {
	src := "states { a = 0 }\ninitial a\n"
	b := NewBundle("default", 7, src)
	if b.Checksum != ChecksumSource(src) {
		t.Fatal("NewBundle checksum mismatch")
	}
	got, err := DecodeBundle(b.Encode())
	if err != nil {
		t.Fatalf("DecodeBundle: %v", err)
	}
	if got != b {
		t.Fatalf("round trip: %+v != %+v", got, b)
	}
	if !strings.HasPrefix(b.ETag(), "g7-") {
		t.Fatalf("etag = %q", b.ETag())
	}
	if NewBundle("default", 7, src+"\n").ETag() == b.ETag() {
		t.Fatal("etag ignores content changes")
	}
}

func TestBundleDecodeRejectsCorruption(t *testing.T) {
	b := NewBundle("default", 1, "states { a = 0 }\ninitial a\n")
	wire := b.Encode()

	// Flip a byte in the body: checksum mismatch.
	tampered := append([]byte(nil), wire...)
	tampered[len(tampered)-3] ^= 0x20
	if _, err := DecodeBundle(tampered); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered body: err = %v", err)
	}

	if _, err := DecodeBundle([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeBundle([]byte("WRONG-MAGIC\ngeneration: 1\n---\nx")); err == nil {
		t.Fatal("wrong magic decoded")
	}
	noCk := "SACK-BUNDLE/1\ngroup: g\ngeneration: 1\n---\nx"
	if _, err := DecodeBundle([]byte(noCk)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("missing checksum: err = %v", err)
	}
}
