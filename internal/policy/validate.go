package policy

import (
	"fmt"
	"strings"

	"repro/internal/glob"
	"repro/internal/sys"
)

// Severity grades a validation finding.
type Severity int

// Severities.
const (
	Warning Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Issue is one validation finding, positioned in the source.
type Issue struct {
	Severity Severity
	Pos      Pos
	Message  string
}

// String renders "error 3:4: message".
func (i Issue) String() string {
	return fmt.Sprintf("%s %s: %s", i.Severity, i.Pos, i.Message)
}

// ValidationResult aggregates all findings for a policy file.
type ValidationResult struct {
	Issues []Issue
}

// Errors returns only error-severity findings.
func (r *ValidationResult) Errors() []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Severity == Error {
			out = append(out, i)
		}
	}
	return out
}

// Warnings returns only warning-severity findings.
func (r *ValidationResult) Warnings() []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Severity == Warning {
			out = append(out, i)
		}
	}
	return out
}

// OK reports whether no errors were found (warnings allowed).
func (r *ValidationResult) OK() bool { return len(r.Errors()) == 0 }

// Err folds the error findings into a single error, or nil.
func (r *ValidationResult) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.String()
	}
	return fmt.Errorf("policy: validation failed:\n  %s", strings.Join(msgs, "\n  "))
}

func (r *ValidationResult) errorf(pos Pos, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{Severity: Error, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (r *ValidationResult) warnf(pos Pos, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{Severity: Warning, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Validate performs the semantic checks the paper's "policy-checking
// tools" provide: reference integrity across the four interfaces,
// deterministic transitions, glob syntax, allow/deny conflicts, and
// reachability.
func Validate(f *File) *ValidationResult {
	r := &ValidationResult{}

	// --- states ---
	if len(f.States) == 0 {
		r.errorf(Pos{1, 1}, "policy declares no situation states")
	}
	states := make(map[string]StateDecl, len(f.States))
	encodings := make(map[uint32]string)
	for _, s := range f.States {
		if _, dup := states[s.Name]; dup {
			r.errorf(s.Pos, "duplicate state %s", quoteIdent(s.Name))
			continue
		}
		states[s.Name] = s
		if s.Encoding != nil {
			if prev, taken := encodings[*s.Encoding]; taken {
				r.errorf(s.Pos, "state %s reuses encoding %d already assigned to %s",
					quoteIdent(s.Name), *s.Encoding, quoteIdent(prev))
			} else {
				encodings[*s.Encoding] = s.Name
			}
		}
	}

	// --- initial state ---
	initial := f.Initial
	if initial == "" && len(f.States) > 0 {
		initial = f.States[0].Name
	}
	if initial != "" {
		if _, ok := states[initial]; !ok {
			r.errorf(f.InitialPos, "initial state %s is not declared", quoteIdent(initial))
		}
	}

	// --- failsafe state ---
	if f.Failsafe != "" {
		if _, ok := states[f.Failsafe]; !ok {
			r.errorf(f.FailsafePos, "failsafe state %s is not declared", quoteIdent(f.Failsafe))
		}
	}

	// --- permissions ---
	perms := make(map[string]PermDecl, len(f.Permissions))
	for _, p := range f.Permissions {
		if _, dup := perms[p.Name]; dup {
			r.errorf(p.Pos, "duplicate permission %s", quoteIdent(p.Name))
			continue
		}
		perms[p.Name] = p
	}

	// --- events ---
	events := make(map[string]EventDecl, len(f.Events))
	for _, e := range f.Events {
		if _, dup := events[e.Name]; dup {
			r.errorf(e.Pos, "duplicate event %s", quoteIdent(e.Name))
			continue
		}
		events[e.Name] = e
	}

	// --- state_per ---
	statePerSeen := make(map[string]bool)
	grantedPerms := make(map[string]bool)
	for _, sp := range f.StatePer {
		if _, ok := states[sp.State]; !ok {
			r.errorf(sp.Pos, "state_per references undeclared state %s", quoteIdent(sp.State))
		}
		if statePerSeen[sp.State] {
			r.errorf(sp.Pos, "state %s appears twice in state_per", quoteIdent(sp.State))
		}
		statePerSeen[sp.State] = true
		permSeen := make(map[string]bool)
		for _, pm := range sp.Perms {
			if _, ok := perms[pm]; !ok {
				r.errorf(sp.Pos, "state_per for %s references undeclared permission %s",
					quoteIdent(sp.State), quoteIdent(pm))
			}
			if permSeen[pm] {
				r.warnf(sp.Pos, "permission %s listed twice for state %s", quoteIdent(pm), quoteIdent(sp.State))
			}
			permSeen[pm] = true
			grantedPerms[pm] = true
		}
	}

	// --- per_rules ---
	perRulesSeen := make(map[string]bool)
	for _, pr := range f.PerRules {
		if _, ok := perms[pr.Perm]; !ok {
			r.errorf(pr.Pos, "per_rules references undeclared permission %s", quoteIdent(pr.Perm))
		}
		if perRulesSeen[pr.Perm] {
			r.errorf(pr.Pos, "permission %s has two per_rules blocks", quoteIdent(pr.Perm))
		}
		perRulesSeen[pr.Perm] = true
		if len(pr.Rules) == 0 {
			r.warnf(pr.Pos, "permission %s has an empty per_rules block", quoteIdent(pr.Perm))
		}
		for _, rule := range pr.Rules {
			validateRule(r, rule)
		}
	}
	for name, p := range perms {
		if !perRulesSeen[name] {
			r.warnf(p.Pos, "permission %s has no per_rules block (grants nothing)", quoteIdent(name))
		}
		if !grantedPerms[name] {
			r.warnf(p.Pos, "permission %s is never granted by any state", quoteIdent(name))
		}
	}

	// --- transitions ---
	type transKey struct{ from, event string }
	transSeen := make(map[transKey]string)
	adjacency := make(map[string][]string)
	for _, t := range f.Transitions {
		if _, ok := states[t.From]; !ok {
			r.errorf(t.Pos, "transition source state %s is not declared", quoteIdent(t.From))
		}
		if _, ok := states[t.To]; !ok {
			r.errorf(t.Pos, "transition target state %s is not declared", quoteIdent(t.To))
		}
		if len(f.Events) > 0 {
			if _, ok := events[t.Event]; !ok {
				r.errorf(t.Pos, "transition uses undeclared event %s", quoteIdent(t.Event))
			}
		}
		key := transKey{t.From, t.Event}
		if to, dup := transSeen[key]; dup {
			if to == t.To {
				r.warnf(t.Pos, "duplicate transition %s -> %s on %s", quoteIdent(t.From), quoteIdent(t.To), quoteIdent(t.Event))
			} else {
				r.errorf(t.Pos, "nondeterministic transition: %s on %s goes to both %s and %s",
					quoteIdent(t.From), quoteIdent(t.Event), quoteIdent(to), quoteIdent(t.To))
			}
		}
		transSeen[key] = t.To
		adjacency[t.From] = append(adjacency[t.From], t.To)
		if t.From == t.To {
			r.warnf(t.Pos, "self-transition %s on %s has no effect on permissions", quoteIdent(t.From), quoteIdent(t.Event))
		}
	}

	// --- reachability ---
	// Classification is shared with the symbolic verifier (reach.go), so
	// the warning classes here and the verifier's reachable set can never
	// disagree. Failsafe-only and break-glass-only states get distinct
	// warnings: both are invisible to normal operation, but the former is
	// entered by the watchdog while the latter needs a CAP_MAC_ADMIN
	// break-glass force — dead policy unless that is the intent.
	if initial != "" && len(f.Transitions) > 0 {
		names := make([]string, 0, len(f.States))
		for _, s := range f.States {
			names = append(names, s.Name)
		}
		kinds := classifyReachability(names, initial, f.Failsafe, adjacency)
		for _, s := range f.States {
			switch kinds[s.Name] {
			case EntryFailsafe:
				if s.Name != f.Failsafe {
					r.warnf(s.Pos, "state %s is only reachable after failsafe degradation pins %s (no normal event path from %s)",
						quoteIdent(s.Name), quoteIdent(f.Failsafe), quoteIdent(initial))
				}
			case EntryBreakGlass:
				r.warnf(s.Pos, "state %s is unreachable from the initial state %s (only break-glass can enter it)",
					quoteIdent(s.Name), quoteIdent(initial))
			}
		}
	}

	// --- allow/deny conflicts per state ---
	detectConflicts(r, f)

	return r
}

// validateRule checks operation names, glob syntax, and intra-rule
// consistency for one MAC rule.
func validateRule(r *ValidationResult, rule RuleDecl) {
	seen := make(map[string]bool)
	for _, op := range rule.Ops {
		if sys.ParseAccess(op) == 0 {
			r.errorf(rule.Pos, "unknown operation %s (valid: %s)", quoteIdent(op), strings.Join(sys.AccessNames(), ", "))
		}
		if seen[op] {
			r.warnf(rule.Pos, "operation %s repeated in rule", quoteIdent(op))
		}
		seen[op] = true
	}
	if _, err := glob.Compile(rule.Path); err != nil {
		r.errorf(rule.Pos, "bad path pattern: %v", err)
	}
	if rule.Subject != "" {
		if _, err := glob.Compile(rule.Subject); err != nil {
			r.errorf(rule.Pos, "bad subject pattern: %v", err)
		}
	}
}

// detectConflicts finds allow/deny pairs that target overlapping paths
// with overlapping operations within the rule set a single state
// activates. Deny always wins at runtime; the check surfaces the
// contradiction so administrators see it before deployment.
func detectConflicts(r *ValidationResult, f *File) {
	rulesByPerm := make(map[string][]RuleDecl)
	for _, pr := range f.PerRules {
		rulesByPerm[pr.Perm] = append(rulesByPerm[pr.Perm], pr.Rules...)
	}
	for _, sp := range f.StatePer {
		var all []RuleDecl
		for _, pm := range sp.Perms {
			all = append(all, rulesByPerm[pm]...)
		}
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				a, b := all[i], all[j]
				if a.Deny == b.Deny {
					continue
				}
				if !opsOverlap(a.Ops, b.Ops) {
					continue
				}
				deny, allow := a, b
				if b.Deny {
					deny, allow = b, a
				}
				// A literal deny carved out of a broader allow glob is the
				// standard exception idiom (allow /dev/firmware/*, deny
				// /dev/firmware/bootloader) — intentional, not a conflict.
				if isCarveOut(allow.Path, deny.Path) {
					continue
				}
				if w, overlap := patternsOverlap(a.Path, b.Path); overlap {
					msg := fmt.Sprintf("state %s both allows and denies overlapping paths %q and %q (deny wins at runtime)",
						quoteIdent(sp.State), a.Path, b.Path)
					if w != "" {
						msg += fmt.Sprintf(", e.g. %q", w)
					}
					r.warnf(b.Pos, "%s", msg)
				}
			}
		}
	}
}

func opsOverlap(a, b []string) bool {
	var ma, mb sys.Access
	for _, op := range a {
		ma |= sys.ParseAccess(op)
	}
	for _, op := range b {
		mb |= sys.ParseAccess(op)
	}
	return ma&mb != 0
}

// isCarveOut reports whether denyPath is a strictly narrower exception
// inside allowPath: the deny is literal (or narrower) and falls within
// the allow glob, while the allow covers more than just the deny.
func isCarveOut(allowPath, denyPath string) bool {
	if allowPath == denyPath {
		return false
	}
	ga, errA := glob.Compile(allowPath)
	gd, errD := glob.Compile(denyPath)
	if errA != nil || errD != nil {
		return false
	}
	if !gd.Literal() || ga.Literal() {
		return false
	}
	return ga.Match(denyPath)
}

// patternsOverlap decides glob intersection exactly via the segment-wise
// construction in internal/glob, returning a concrete witness path when
// one exists so the warning shows the administrator a real conflicting
// object. The earlier release approximated this with a literal-prefix
// comparison — complete (LiteralPrefix is a required prefix of every
// match, so intersecting patterns always have prefix-related prefixes)
// but imprecise: disjoint pairs sharing a prefix, like /dev/can/a*/x vs
// /dev/can/*/y, were flagged as conflicts. The prefix test survives only
// as the conservative fallback for the rare pattern shapes the exact
// construction cannot segment-index.
func patternsOverlap(a, b string) (witness string, overlap bool) {
	if a == b {
		return a, true
	}
	ga, errA := glob.Compile(a)
	gb, errB := glob.Compile(b)
	if errA != nil || errB != nil {
		return "", false
	}
	switch w, res := glob.Intersect(ga, gb); res {
	case glob.IntersectFound:
		return w, true
	case glob.IntersectNone:
		return "", false
	}
	// Inconclusive (unsegmentable shapes): fall back to the complete
	// prefix heuristic and warn without a witness.
	pa, pb := ga.LiteralPrefix(), gb.LiteralPrefix()
	if strings.HasPrefix(pa, pb) || strings.HasPrefix(pb, pa) {
		return "", true
	}
	return "", false
}
