package policy

// matcher_diff_test holds the trie-compiled decision engine against the
// legacy glob-walk engine over randomly generated rule sets and access
// keys. The contract is exactness: same allowed verdict AND the same
// deciding-rule pointer for every (subject, path, mask) triple, plus
// coverage-trie == coverage-walk for every path. Failures replay
// deterministically from the seed. `make matcher-diff` runs this under
// the race detector as part of `make check`.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/glob"
	"repro/internal/sys"
)

var diffLiteralSegs = []string{
	"a", "b", "ab", "dev", "vehicle", "door0", "door1", "window0",
	"srv", "sack", "etc", "x", "file.dat", "", "door10",
}

var diffPatternSegs = []string{
	"*", "?", "a*", "*0", "do?r[01]", "[ab]", "[^a]b", "d*r*",
	"door?", "w[il]ndow*", "file.*", "**", "{a,b}", "{door,window}[01]",
}

// genPattern emits a random policy path pattern. Roughly one in eight is
// deliberately hostile to the trie: unrooted, "**" glued mid-segment, or
// ending in '/' — exercising the complex-rule fallback.
func genPattern(r *rand.Rand) string {
	n := 1 + r.Intn(4)
	segs := make([]string, n)
	for i := range segs {
		if r.Intn(2) == 0 {
			segs[i] = diffLiteralSegs[r.Intn(len(diffLiteralSegs))]
		} else {
			segs[i] = diffPatternSegs[r.Intn(len(diffPatternSegs))]
		}
	}
	p := "/" + strings.Join(segs, "/")
	switch r.Intn(16) {
	case 0:
		p = p[1:] // unrooted: cannot anchor in the trie
	case 1:
		p = "/" + segs[0] + "**" // "**" glued to a segment
	case 2:
		p += "/" // trailing slash: empty final segment
	}
	if p == "" || p == "/" && r.Intn(2) == 0 {
		p = "/**"
	}
	return p
}

func genPath(r *rand.Rand) string {
	n := r.Intn(5)
	segs := make([]string, n)
	for i := range segs {
		segs[i] = diffLiteralSegs[r.Intn(len(diffLiteralSegs))]
	}
	p := "/" + strings.Join(segs, "/")
	switch r.Intn(12) {
	case 0:
		p = p[1:] // unrooted path (e.g. "pipe:" style keys)
		if p == "" {
			p = "pipe:[42]"
		}
	case 1:
		p += "/"
	}
	return p
}

var diffSubjects = []string{"", "/usr/bin/ivi", "/usr/bin/rescued", "/sbin/sds"}

func genRules(t *testing.T, r *rand.Rand, n int) []CompiledRule {
	t.Helper()
	rules := make([]CompiledRule, 0, n)
	for len(rules) < n {
		pat, err := glob.Compile(genPattern(r))
		if err != nil {
			continue // generator emitted an invalid pattern; try again
		}
		cr := CompiledRule{
			Pattern: pat,
			Access:  sys.Access(1 + r.Intn(7)), // read/write/exec combinations
			Deny:    r.Intn(4) == 0,
			Perm:    "FUZZ",
		}
		if r.Intn(5) == 0 {
			subj := []string{"/usr/bin/*", "/usr/bin/ivi", "**", "/sbin/?ds"}[r.Intn(4)]
			if cr.Subject, err = glob.Compile(subj); err != nil {
				t.Fatalf("subject pattern: %v", err)
			}
		}
		rules = append(rules, cr)
	}
	return rules
}

func TestMatcherDifferentialFuzz(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			rules := genRules(t, r, 1+r.Intn(40))
			rs := NewRuleSet("fuzz", rules)
			m := rs.Matcher()
			if m == nil {
				t.Fatalf("matcher not built for %d rules", len(rules))
			}

			patterns := make([]*glob.Glob, len(rules))
			for i := range rules {
				patterns[i] = rules[i].Pattern
			}
			cov := NewCoverage(patterns)

			for trial := 0; trial < 400; trial++ {
				path := genPath(r)
				subject := diffSubjects[r.Intn(len(diffSubjects))]
				mask := sys.Access(r.Intn(8))

				wantAllowed, wantRule := rs.Decide(subject, path, mask)
				gotAllowed, gotRule := m.Decide(subject, path, mask)
				if gotAllowed != wantAllowed || gotRule != wantRule {
					t.Fatalf("seed %d trial %d: divergence on subject=%q path=%q mask=%s:\n"+
						"  walk: allowed=%v rule=%v\n  trie: allowed=%v rule=%v",
						seed, trial, subject, path, mask,
						wantAllowed, ruleStr(wantRule), gotAllowed, ruleStr(gotRule))
				}

				if walk, trie := cov.CoversWalk(path), cov.Covers(path); walk != trie {
					t.Fatalf("seed %d trial %d: coverage divergence on path=%q: walk=%v trie=%v",
						seed, trial, path, walk, trie)
				}
			}
		})
	}
}

func ruleStr(r *CompiledRule) string {
	if r == nil {
		return "<nil>"
	}
	return r.String()
}

// TestMatcherDifferentialLinear cross-checks a third way: on rule sets
// with no deny rules and no subjects, trie and linear-scan engines must
// also agree (the deny short-circuit is the only order-sensitive part).
func TestMatcherDifferentialLinear(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var rules []CompiledRule
	for _, cr := range genRules(t, r, 30) {
		cr.Deny = false
		cr.Subject = nil
		rules = append(rules, cr)
	}
	rs := NewRuleSet("fuzz", rules)
	m := rs.Matcher()
	for trial := 0; trial < 500; trial++ {
		path := genPath(r)
		mask := sys.Access(r.Intn(8))
		wantAllowed, _ := rs.DecideLinear("", path, mask)
		gotAllowed, _ := m.Decide("", path, mask)
		if gotAllowed != wantAllowed {
			t.Fatalf("trial %d: path=%q mask=%s: linear=%v trie=%v",
				trial, path, mask, wantAllowed, gotAllowed)
		}
	}
}

// TestMatcherOversizedFallback: a rule set beyond the residual memory
// guard builds no trie, signalling callers to stay on the walk engine.
// The guard is a variable so the test can lower it instead of building
// a million rules.
func TestMatcherOversizedFallback(t *testing.T) {
	old := maxMatcherRules
	maxMatcherRules = 8
	defer func() { maxMatcherRules = old }()

	pat := glob.MustCompile("/srv/**")
	rules := make([]CompiledRule, maxMatcherRules+1)
	for i := range rules {
		rules[i] = CompiledRule{Pattern: pat, Access: sys.MayRead}
	}
	if rs := NewRuleSet("big", rules); rs.Matcher() != nil {
		t.Fatal("oversized rule set should not build a matcher")
	}
	if rs := NewRuleSet("fits", rules[:maxMatcherRules]); rs.Matcher() == nil {
		t.Fatal("rule set at the bound should build a matcher")
	}
}

// TestMatcherSpillDifferential exercises the segmented bitset's spill
// block: >1024 rules used to silently skip trie compilation; now they
// compile and must stay exact against the walk engine, including rules
// whose ranks land deep in the spill words.
func TestMatcherSpillDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	rules := genRules(t, r, inlineMatcherWords*64+300) // 1324 rules: inline + spill
	rs := NewRuleSet("spill", rules)
	m := rs.Matcher()
	if m == nil {
		t.Fatalf("matcher not built for %d rules", len(rules))
	}
	if m.words <= inlineMatcherWords {
		t.Fatalf("rule set does not reach the spill block: %d words", m.words)
	}
	for trial := 0; trial < 2000; trial++ {
		path := genPath(r)
		subject := diffSubjects[r.Intn(len(diffSubjects))]
		mask := sys.Access(r.Intn(8))
		wantAllowed, wantRule := rs.Decide(subject, path, mask)
		gotAllowed, gotRule := m.Decide(subject, path, mask)
		if gotAllowed != wantAllowed || gotRule != wantRule {
			t.Fatalf("trial %d: divergence on subject=%q path=%q mask=%s:\n"+
				"  walk: allowed=%v rule=%v\n  trie: allowed=%v rule=%v",
				trial, subject, path, mask,
				wantAllowed, ruleStr(wantRule), gotAllowed, ruleStr(gotRule))
		}
	}
}
