package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/glob"
	"repro/internal/sys"
)

// CompiledRule is one MAC rule ready for enforcement.
type CompiledRule struct {
	Pattern *glob.Glob
	Access  sys.Access
	Deny    bool
	Subject *glob.Glob // nil: applies to every subject
	Perm    string     // owning SACK permission, for audit messages
}

// Matches reports whether the rule applies to the subject/path pair.
func (r *CompiledRule) Matches(subject, path string) bool {
	if r.Subject != nil && !r.Subject.Match(subject) {
		return false
	}
	return r.Pattern.Match(path)
}

// String renders the rule in policy syntax.
func (r *CompiledRule) String() string {
	verb := "allow"
	if r.Deny {
		verb = "deny"
	}
	ops := accessToOps(r.Access)
	s := fmt.Sprintf("%s %s %s", verb, strings.Join(ops, ","), r.Pattern)
	if r.Subject != nil {
		s += " subject " + r.Subject.String()
	}
	return s
}

func accessToOps(mask sys.Access) []string {
	var ops []string
	for _, name := range sys.AccessNames() {
		if mask&sys.ParseAccess(name) != 0 {
			ops = append(ops, name)
		}
	}
	return ops
}

// RuleSet is the immutable set of MAC rules active in one situation
// state. Rules are bucketed by the first literal path segment so the
// per-check cost stays flat as policies grow (the property behind the
// paper's Table III). Patterns whose first segment contains a
// metacharacter land in the wildcard bucket checked on every lookup.
type RuleSet struct {
	State    string
	rules    []CompiledRule
	buckets  map[string][]int // first path segment -> rule indices
	wildcard []int            // rules with non-literal first segment

	// matcher is the trie-compiled decision engine over the same rules,
	// built once here (compile/publish time) and exact with respect to
	// Decide; nil when the set exceeds the matcher's rule bound.
	matcher *Matcher
}

// NewRuleSet builds a rule set for a state, including its trie-compiled
// matcher (the publish-time compilation step of DESIGN.md §10).
func NewRuleSet(state string, rules []CompiledRule) *RuleSet {
	rs := &RuleSet{State: state, rules: rules, buckets: make(map[string][]int)}
	for i := range rules {
		seg, literal := firstSegment(rules[i].Pattern.String())
		if literal {
			rs.buckets[seg] = append(rs.buckets[seg], i)
		} else {
			rs.wildcard = append(rs.wildcard, i)
		}
	}
	rs.matcher = newMatcher(rs)
	return rs
}

// Matcher returns the trie-compiled decision engine for this rule set,
// or nil when the set is too large to index (callers then use Decide).
func (rs *RuleSet) Matcher() *Matcher { return rs.matcher }

// firstSegment extracts the first path component of a pattern and
// whether it is metacharacter-free.
func firstSegment(pattern string) (string, bool) {
	p := strings.TrimPrefix(pattern, "/")
	end := strings.IndexByte(p, '/')
	if end < 0 {
		end = len(p)
	}
	seg := p[:end]
	return seg, !strings.ContainsAny(seg, "*?[{")
}

// Len reports the number of rules in the set.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Rules returns a copy of the rule list.
func (rs *RuleSet) Rules() []CompiledRule {
	out := make([]CompiledRule, len(rs.rules))
	copy(out, rs.rules)
	return out
}

// Decide evaluates an access request. Deny rules veto; otherwise every
// requested bit must be granted. matched reports the deciding rule for
// audit (nil when nothing matched).
func (rs *RuleSet) Decide(subject, path string, mask sys.Access) (allowed bool, matched *CompiledRule) {
	var granted sys.Access
	var lastAllow *CompiledRule

	check := func(idx int) (deny bool) {
		r := &rs.rules[idx]
		if !r.Matches(subject, path) {
			return false
		}
		if r.Deny {
			if mask&r.Access != 0 {
				lastAllow = r
				return true
			}
			return false
		}
		if r.Access&mask != 0 {
			granted |= r.Access
			lastAllow = r
		}
		return false
	}

	seg, _ := firstSegment(path)
	for _, idx := range rs.buckets[seg] {
		if check(idx) {
			return false, lastAllow
		}
	}
	for _, idx := range rs.wildcard {
		if check(idx) {
			return false, lastAllow
		}
	}
	if granted.Has(mask) {
		return true, lastAllow
	}
	return false, nil
}

// DecideLinear evaluates the same decision as Decide with a full linear
// scan over every rule, ignoring the first-segment index. It exists for
// the ablation benchmarks that quantify what the index buys; enforcement
// always uses Decide.
func (rs *RuleSet) DecideLinear(subject, path string, mask sys.Access) (allowed bool, matched *CompiledRule) {
	var granted sys.Access
	var lastAllow *CompiledRule
	for i := range rs.rules {
		r := &rs.rules[i]
		if !r.Matches(subject, path) {
			continue
		}
		if r.Deny {
			if mask&r.Access != 0 {
				return false, r
			}
			continue
		}
		if r.Access&mask != 0 {
			granted |= r.Access
			lastAllow = r
		}
	}
	if granted.Has(mask) {
		return true, lastAllow
	}
	return false, nil
}

// Coverage is the union of every rule pattern across all states; SACK
// only mediates objects the policy covers, passing everything else to
// the next LSM.
type Coverage struct {
	buckets  map[string][]*glob.Glob
	wildcard []*glob.Glob
	trie     *coverTrie
}

// NewCoverage indexes the patterns, both in the first-segment buckets
// the walk engine scans and in the segment trie the fast path probes.
func NewCoverage(patterns []*glob.Glob) *Coverage {
	c := &Coverage{buckets: make(map[string][]*glob.Glob)}
	for _, g := range patterns {
		seg, literal := firstSegment(g.String())
		if literal {
			c.buckets[seg] = append(c.buckets[seg], g)
		} else {
			c.wildcard = append(c.wildcard, g)
		}
	}
	c.trie = newCoverTrie(patterns)
	return c
}

// Covers reports whether any policy pattern matches path — the trie
// walk: O(path segments) with early exit, no glob-engine pass over the
// pattern list.
func (c *Coverage) Covers(path string) bool {
	return c.trie.covers(path)
}

// CoversWalk answers the same question with the pre-trie bucket scan.
// It exists for the matcher ablation benchmarks and the differential
// suite that proves the two engines agree; enforcement uses Covers
// unless the walk engine was selected for the whole decision path.
func (c *Coverage) CoversWalk(path string) bool {
	seg, _ := firstSegment(path)
	for _, g := range c.buckets[seg] {
		if g.Match(path) {
			return true
		}
	}
	for _, g := range c.wildcard {
		if g.Match(path) {
			return true
		}
	}
	return false
}

// NumPatterns reports the indexed pattern count.
func (c *Coverage) NumPatterns() int {
	n := len(c.wildcard)
	for _, b := range c.buckets {
		n += len(b)
	}
	return n
}

// StateInfo pairs a state name with its encoding.
type StateInfo struct {
	Name     string
	Encoding uint32
}

// CompiledTransition is one SSM transition rule.
type CompiledTransition struct {
	From  string
	To    string
	Event string
}

// Compiled is a fully validated, enforcement-ready policy: the paper's
// triple (SS_i, P_i, MR_i) materialised per state, plus the transition
// rules that drive the situation state machine.
type Compiled struct {
	States      []StateInfo
	Initial     string
	Failsafe    string // "" when the policy declares no failsafe state
	Permissions []string
	StatePerms  map[string][]string       // f: SS_i -> P_i
	PermRules   map[string][]CompiledRule // g: P_i -> MR_i
	StateSets   map[string]*RuleSet       // g(f(SS_i)) pre-composed
	Transitions []CompiledTransition
	Coverage    *Coverage
}

// Compile validates and lowers a parsed policy. Validation errors abort;
// warnings are returned alongside the result.
func Compile(f *File) (*Compiled, *ValidationResult, error) {
	vr := Validate(f)
	if err := vr.Err(); err != nil {
		return nil, vr, err
	}

	c := &Compiled{
		StatePerms: make(map[string][]string),
		PermRules:  make(map[string][]CompiledRule),
		StateSets:  make(map[string]*RuleSet),
	}

	// Assign encodings: explicit ones first, then lowest free values in
	// declaration order.
	used := make(map[uint32]bool)
	for _, s := range f.States {
		if s.Encoding != nil {
			used[*s.Encoding] = true
		}
	}
	var nextEnc uint32
	for _, s := range f.States {
		enc := uint32(0)
		if s.Encoding != nil {
			enc = *s.Encoding
		} else {
			for used[nextEnc] {
				nextEnc++
			}
			enc = nextEnc
			used[enc] = true
		}
		c.States = append(c.States, StateInfo{Name: s.Name, Encoding: enc})
	}

	c.Initial = f.Initial
	if c.Initial == "" {
		c.Initial = f.States[0].Name
	}
	c.Failsafe = f.Failsafe
	c.Permissions = f.PermissionNames()

	for _, sp := range f.StatePer {
		c.StatePerms[sp.State] = append([]string(nil), sp.Perms...)
	}

	var coverage []*glob.Glob
	for _, pr := range f.PerRules {
		for _, rd := range pr.Rules {
			cr, err := compileRule(pr.Perm, rd)
			if err != nil {
				return nil, vr, err // unreachable post-validation; defensive
			}
			c.PermRules[pr.Perm] = append(c.PermRules[pr.Perm], cr)
			coverage = append(coverage, cr.Pattern)
		}
	}
	c.Coverage = NewCoverage(coverage)

	// Pre-compose g(f(SS)) for every state: the rule set the APE installs
	// on transition, so enforcement is one pointer swap (Algorithm 1).
	statePos := make(map[string]Pos, len(f.States))
	for _, s := range f.States {
		statePos[s.Name] = s.Pos
	}
	for _, s := range c.States {
		var rules []CompiledRule
		for _, perm := range c.StatePerms[s.Name] {
			rules = append(rules, c.PermRules[perm]...)
		}
		rs := NewRuleSet(s.Name, rules)
		if rs.Matcher() == nil {
			vr.warnf(statePos[s.Name],
				"state %s composes %d rules, beyond the %d-rule matcher bound; decisions in this state use the slower walk engine",
				quoteIdent(s.Name), rs.Len(), maxMatcherRules)
		}
		c.StateSets[s.Name] = rs
	}

	for _, t := range f.Transitions {
		c.Transitions = append(c.Transitions, CompiledTransition{From: t.From, To: t.To, Event: t.Event})
	}
	return c, vr, nil
}

func compileRule(perm string, rd RuleDecl) (CompiledRule, error) {
	pattern, err := glob.Compile(rd.Path)
	if err != nil {
		return CompiledRule{}, err
	}
	var subject *glob.Glob
	if rd.Subject != "" {
		if subject, err = glob.Compile(rd.Subject); err != nil {
			return CompiledRule{}, err
		}
	}
	var mask sys.Access
	for _, op := range rd.Ops {
		mask |= sys.ParseAccess(op)
	}
	return CompiledRule{Pattern: pattern, Access: mask, Deny: rd.Deny, Subject: subject, Perm: perm}, nil
}

// StateNames returns the compiled state names in declaration order.
func (c *Compiled) StateNames() []string {
	out := make([]string, len(c.States))
	for i, s := range c.States {
		out[i] = s.Name
	}
	return out
}

// Encoding returns the numeric encoding of a state name.
func (c *Compiled) Encoding(state string) (uint32, bool) {
	for _, s := range c.States {
		if s.Name == state {
			return s.Encoding, true
		}
	}
	return 0, false
}

// EventNames returns the sorted set of events referenced by transitions.
func (c *Compiled) EventNames() []string {
	set := make(map[string]bool)
	for _, t := range c.Transitions {
		set[t.Event] = true
	}
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Load is the one-call front door: parse, validate, compile.
func Load(src string) (*Compiled, *ValidationResult, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return Compile(f)
}
