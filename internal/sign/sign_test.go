package sign

import (
	"errors"
	"testing"
)

func TestHMACRoundtrip(t *testing.T) {
	s, v := NewHMAC("fleet-2026", []byte("s3cret"))
	payload := []byte("bundle bytes")
	sig := s.Sign(payload)
	if !v.Verify(payload, sig) {
		t.Fatal("valid HMAC rejected")
	}
	if v.Verify([]byte("tampered"), sig) {
		t.Fatal("tampered payload accepted")
	}
	sig[0] ^= 0xff
	if v.Verify(payload, sig) {
		t.Fatal("flipped signature accepted")
	}
}

func TestHMACWrongSecret(t *testing.T) {
	s, _ := NewHMAC("k", []byte("right"))
	_, v := NewHMAC("k", []byte("wrong"))
	if v.Verify([]byte("p"), s.Sign([]byte("p"))) {
		t.Fatal("signature under a different secret accepted")
	}
}

func TestEd25519Roundtrip(t *testing.T) {
	s, v, err := GenerateEd25519("ota-root")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("bundle bytes")
	sig := s.Sign(payload)
	if !v.Verify(payload, sig) {
		t.Fatal("valid ed25519 signature rejected")
	}
	if v.Verify(append(payload, 'x'), sig) {
		t.Fatal("tampered payload accepted")
	}
	if v.Verify(payload, sig[:10]) {
		t.Fatal("truncated signature accepted")
	}
}

func TestKeyringTypedErrors(t *testing.T) {
	s, v := NewHMAC("k1", []byte("secret"))
	kr := NewKeyring(v)
	payload := []byte("payload")
	sig := s.Sign(payload)

	if err := kr.Verify("k1", AlgHMACSHA256, payload, sig); err != nil {
		t.Fatalf("valid: %v", err)
	}
	if err := kr.Verify("", "", payload, nil); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("unsigned: %v, want ErrUnsigned", err)
	}
	if err := kr.Verify("k2", AlgHMACSHA256, payload, sig); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("unknown key: %v, want ErrUnknownKey", err)
	}
	if err := kr.Verify("k1", AlgEd25519, payload, sig); !errors.Is(err, ErrAlgorithmMismatch) {
		t.Fatalf("alg mismatch: %v, want ErrAlgorithmMismatch", err)
	}
	bad := append([]byte(nil), sig...)
	bad[3] ^= 1
	if err := kr.Verify("k1", AlgHMACSHA256, payload, bad); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("bad signature: %v, want ErrBadSignature", err)
	}
}

func TestKeyringEmptyAcceptsUnsigned(t *testing.T) {
	var nilRing *Keyring
	if err := nilRing.Verify("", "", []byte("p"), nil); err != nil {
		t.Fatalf("nil keyring must accept unsigned: %v", err)
	}
	kr := NewKeyring()
	if err := kr.Verify("", "", []byte("p"), nil); err != nil {
		t.Fatalf("empty keyring must accept unsigned: %v", err)
	}
}

func TestKeyringRotation(t *testing.T) {
	s1, v1 := NewHMAC("gen1", []byte("old"))
	s2, v2 := NewHMAC("gen2", []byte("new"))
	kr := NewKeyring(v1)
	payload := []byte("payload")

	// Successor key unknown until added.
	if err := kr.Verify("gen2", AlgHMACSHA256, payload, s2.Sign(payload)); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("pre-rotation: %v", err)
	}
	kr.Add(v2)
	// Both generations verify during the overlap window.
	if err := kr.Verify("gen1", AlgHMACSHA256, payload, s1.Sign(payload)); err != nil {
		t.Fatalf("old key during overlap: %v", err)
	}
	if err := kr.Verify("gen2", AlgHMACSHA256, payload, s2.Sign(payload)); err != nil {
		t.Fatalf("new key during overlap: %v", err)
	}
	// Retire the old generation.
	kr.Remove("gen1")
	if err := kr.Verify("gen1", AlgHMACSHA256, payload, s1.Sign(payload)); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("retired key: %v", err)
	}
	if got := kr.KeyIDs(); len(got) != 1 || got[0] != "gen2" {
		t.Fatalf("KeyIDs = %v", got)
	}
}
