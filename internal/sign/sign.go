// Package sign provides detached signatures for policy bundles: the
// control plane signs the canonical bundle bytes at publish time and
// every consumer (fleet agent, HTTP client, CLI) verifies before the
// bundle is allowed anywhere near ReloadCompiled.
//
// Two algorithms, both from the standard library:
//
//   - hmac-sha256 — a shared fleet secret; cheap, symmetric, fine when
//     the control plane and vehicles share a trust domain.
//   - ed25519 — asymmetric; vehicles hold only the public key, so a
//     compromised vehicle cannot mint bundles.
//
// Keys are named by key-id so a Keyring can hold several generations at
// once: rotation is "add the new key, re-sign, retire the old" with no
// flag day. Verification failures are typed (ErrUnknownKey,
// ErrBadSignature, ErrUnsigned) so transport layers can map them to
// distinct statuses.
package sign

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Algorithm names as they appear in the bundle wire format.
const (
	AlgHMACSHA256 = "hmac-sha256"
	AlgEd25519    = "ed25519"
)

// Typed verification failures. Transports map these to distinct HTTP
// statuses; the agent maps them to a refused apply + cached-bundle
// fallback.
var (
	// ErrUnknownKey: the bundle names a key-id the keyring doesn't hold.
	ErrUnknownKey = errors.New("sign: unknown key id")
	// ErrBadSignature: the signature does not verify over the payload.
	ErrBadSignature = errors.New("sign: signature verification failed")
	// ErrUnsigned: the verifier requires a signature and the bundle
	// carries none.
	ErrUnsigned = errors.New("sign: bundle is not signed")
	// ErrAlgorithmMismatch: the bundle's sig-alg disagrees with the
	// keyring entry for that key-id.
	ErrAlgorithmMismatch = errors.New("sign: algorithm mismatch for key id")
)

// Signer produces detached signatures under one named key.
type Signer struct {
	keyID string
	alg   string
	sign  func(payload []byte) []byte
}

// KeyID returns the signer's key identifier.
func (s *Signer) KeyID() string { return s.keyID }

// Algorithm returns the signer's algorithm name.
func (s *Signer) Algorithm() string { return s.alg }

// Sign returns the detached signature over payload.
func (s *Signer) Sign(payload []byte) []byte { return s.sign(payload) }

// Verifier checks detached signatures under one named key.
type Verifier struct {
	keyID  string
	alg    string
	verify func(payload, sig []byte) bool
}

// KeyID returns the verifier's key identifier.
func (v *Verifier) KeyID() string { return v.keyID }

// Algorithm returns the verifier's algorithm name.
func (v *Verifier) Algorithm() string { return v.alg }

// Verify reports whether sig is a valid signature over payload.
func (v *Verifier) Verify(payload, sig []byte) bool { return v.verify(payload, sig) }

// NewHMAC returns a signer/verifier pair sharing an HMAC-SHA256 secret.
func NewHMAC(keyID string, secret []byte) (*Signer, *Verifier) {
	key := append([]byte(nil), secret...)
	mac := func(payload []byte) []byte {
		h := hmac.New(sha256.New, key)
		h.Write(payload)
		return h.Sum(nil)
	}
	s := &Signer{keyID: keyID, alg: AlgHMACSHA256, sign: mac}
	v := &Verifier{keyID: keyID, alg: AlgHMACSHA256, verify: func(payload, sig []byte) bool {
		return hmac.Equal(mac(payload), sig)
	}}
	return s, v
}

// NewEd25519Signer wraps an Ed25519 private key.
func NewEd25519Signer(keyID string, priv ed25519.PrivateKey) *Signer {
	key := append(ed25519.PrivateKey(nil), priv...)
	return &Signer{keyID: keyID, alg: AlgEd25519, sign: func(payload []byte) []byte {
		return ed25519.Sign(key, payload)
	}}
}

// NewEd25519Verifier wraps an Ed25519 public key.
func NewEd25519Verifier(keyID string, pub ed25519.PublicKey) *Verifier {
	key := append(ed25519.PublicKey(nil), pub...)
	return &Verifier{keyID: keyID, alg: AlgEd25519, verify: func(payload, sig []byte) bool {
		if len(sig) != ed25519.SignatureSize {
			return false
		}
		return ed25519.Verify(key, payload, sig)
	}}
}

// GenerateEd25519 mints a fresh keypair as a signer/verifier pair.
func GenerateEd25519(keyID string) (*Signer, *Verifier, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("sign: generate: %w", err)
	}
	return NewEd25519Signer(keyID, priv), NewEd25519Verifier(keyID, pub), nil
}

// Keyring holds the verifiers a consumer trusts, by key-id. A non-empty
// keyring means signatures are REQUIRED: an unsigned bundle fails with
// ErrUnsigned. Safe for concurrent use; keys may be added while
// verifications are in flight (rotation).
type Keyring struct {
	mu   sync.RWMutex
	keys map[string]*Verifier
}

// NewKeyring builds a keyring from the given verifiers.
func NewKeyring(verifiers ...*Verifier) *Keyring {
	kr := &Keyring{keys: make(map[string]*Verifier, len(verifiers))}
	for _, v := range verifiers {
		kr.keys[v.KeyID()] = v
	}
	return kr
}

// Add installs (or replaces) a verifier. This is the rotation hook: add
// the successor key before the control plane starts signing with it.
func (kr *Keyring) Add(v *Verifier) {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	kr.keys[v.KeyID()] = v
}

// Remove retires a key-id.
func (kr *Keyring) Remove(keyID string) {
	kr.mu.Lock()
	defer kr.mu.Unlock()
	delete(kr.keys, keyID)
}

// KeyIDs lists held key-ids, sorted.
func (kr *Keyring) KeyIDs() []string {
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	ids := make([]string, 0, len(kr.keys))
	for id := range kr.keys {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Empty reports whether the keyring holds no keys (signatures optional).
func (kr *Keyring) Empty() bool {
	if kr == nil {
		return true
	}
	kr.mu.RLock()
	defer kr.mu.RUnlock()
	return len(kr.keys) == 0
}

// Verify checks a detached signature: keyID and alg come from the
// bundle headers, sig is the detached signature over payload. An empty
// keyID/sig means the bundle is unsigned — rejected with ErrUnsigned
// whenever the keyring holds any key.
func (kr *Keyring) Verify(keyID, alg string, payload, sig []byte) error {
	if kr.Empty() {
		return nil
	}
	if keyID == "" || len(sig) == 0 {
		return ErrUnsigned
	}
	kr.mu.RLock()
	v, ok := kr.keys[keyID]
	kr.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownKey, keyID)
	}
	if alg != v.Algorithm() {
		return fmt.Errorf("%w: %q signs with %s, bundle claims %s",
			ErrAlgorithmMismatch, keyID, v.Algorithm(), alg)
	}
	if !v.Verify(payload, sig) {
		return fmt.Errorf("%w (key %q)", ErrBadSignature, keyID)
	}
	return nil
}
