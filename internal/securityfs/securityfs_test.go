package securityfs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sys"
	"repro/internal/vfs"
)

func TestMountCreatesMountPoint(t *testing.T) {
	host := vfs.New()
	if _, err := Mount(host); err != nil {
		t.Fatal(err)
	}
	node, err := host.Lookup(MountPoint)
	if err != nil || !node.Mode().IsDir() {
		t.Fatalf("mount point: %v", err)
	}
}

func TestCreateDirAndFile(t *testing.T) {
	host := vfs.New()
	s, _ := Mount(host)
	dir, err := s.CreateDir("SACK")
	if err != nil {
		t.Fatal(err)
	}
	if dir != MountPoint+"/SACK" {
		t.Errorf("dir = %q", dir)
	}
	if _, err := s.CreateDir("SACK"); !sys.IsErrno(err, sys.EEXIST) {
		t.Errorf("duplicate dir: %v", err)
	}
	if _, err := s.CreateDir(""); !sys.IsErrno(err, sys.EINVAL) {
		t.Errorf("empty dir: %v", err)
	}

	var got []byte
	path, err := s.CreateFile("SACK", "events", 0o600, &FuncFile{
		OnWrite: func(_ *sys.Cred, data []byte) error {
			got = append([]byte(nil), data...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := host.Lookup(path)
	if err != nil {
		t.Fatal(err)
	}
	f := vfs.NewFile(node, path, vfs.OWronly)
	if _, err := f.Write(sys.NewCred(0, 0), []byte("crash\n")); err != nil {
		t.Fatal(err)
	}
	if string(got) != "crash\n" {
		t.Errorf("handler got %q", got)
	}

	if _, err := s.CreateFile("missing", "f", 0o600, &FuncFile{}); !sys.IsErrno(err, sys.ENOENT) {
		t.Errorf("file in unregistered dir: %v", err)
	}
	if _, err := s.CreateFile("SACK", "", 0o600, &FuncFile{}); !sys.IsErrno(err, sys.EINVAL) {
		t.Errorf("empty name: %v", err)
	}
	if _, err := s.CreateFile("SACK", "x", 0o600, nil); !sys.IsErrno(err, sys.EINVAL) {
		t.Errorf("nil handler: %v", err)
	}
}

func TestRemove(t *testing.T) {
	host := vfs.New()
	s, _ := Mount(host)
	s.CreateDir("m")
	path, _ := s.CreateFile("m", "f", 0o600, &FuncFile{OnRead: func(*sys.Cred) ([]byte, error) { return nil, nil }})
	if err := s.Remove(path); err != nil {
		t.Fatal(err)
	}
	if host.Exists(path) {
		t.Error("file survived remove")
	}
	if err := s.Remove(path); !sys.IsErrno(err, sys.ENOENT) {
		t.Errorf("double remove: %v", err)
	}
}

func TestPaths(t *testing.T) {
	host := vfs.New()
	s, _ := Mount(host)
	s.CreateDir("m")
	s.CreateFile("m", "a", 0o600, &FuncFile{OnRead: func(*sys.Cred) ([]byte, error) { return nil, nil }})
	s.CreateFile("m", "b", 0o600, &FuncFile{OnRead: func(*sys.Cred) ([]byte, error) { return nil, nil }})
	if got := s.Paths(); len(got) != 2 {
		t.Errorf("paths = %v", got)
	}
}

func TestFuncFileDefaults(t *testing.T) {
	cred := sys.NewCred(0, 0)
	empty := &FuncFile{}
	if _, err := empty.ReadAt(cred, make([]byte, 4), 0); !sys.IsErrno(err, sys.EACCES) {
		t.Errorf("read without OnRead: %v", err)
	}
	if _, err := empty.WriteAt(cred, []byte("x"), 0); !sys.IsErrno(err, sys.EACCES) {
		t.Errorf("write without OnWrite: %v", err)
	}
	if _, err := empty.Ioctl(cred, 1, 0); !sys.IsErrno(err, sys.ENOTTY) {
		t.Errorf("ioctl without OnIoctl: %v", err)
	}
}

func TestFuncFileWindowedReads(t *testing.T) {
	cred := sys.NewCred(0, 0)
	f := &FuncFile{OnRead: func(*sys.Cred) ([]byte, error) {
		return []byte("0123456789"), nil
	}}
	buf := make([]byte, 4)
	n, err := f.ReadAt(cred, buf, 0)
	if err != nil || string(buf[:n]) != "0123" {
		t.Fatalf("window 0: %q, %v", buf[:n], err)
	}
	n, err = f.ReadAt(cred, buf, 8)
	if err != nil || string(buf[:n]) != "89" {
		t.Fatalf("window 8: %q, %v", buf[:n], err)
	}
	n, err = f.ReadAt(cred, buf, 100)
	if n != 0 || err != nil {
		t.Fatalf("past EOF: %d, %v", n, err)
	}
}

func TestFuncFileSeesCallerCred(t *testing.T) {
	var seen int
	f := &FuncFile{OnWrite: func(cred *sys.Cred, _ []byte) error {
		seen = cred.UID
		return nil
	}}
	f.WriteAt(sys.NewCred(42, 42), []byte("x"), 0)
	if seen != 42 {
		t.Errorf("handler saw uid %d", seen)
	}
}

func TestConcurrentRegistration(t *testing.T) {
	host := vfs.New()
	s, _ := Mount(host)
	s.CreateDir("m")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := strings.Repeat("f", g+1)
			if _, err := s.CreateFile("m", name, 0o600, &FuncFile{
				OnRead: func(*sys.Cred) ([]byte, error) { return nil, nil },
			}); err != nil {
				t.Errorf("create %s: %v", name, err)
			}
		}(g)
	}
	wg.Wait()
	if len(s.Paths()) != 8 {
		t.Errorf("paths = %d", len(s.Paths()))
	}
}
