// Package securityfs simulates the kernel's securityfs: a pseudo
// filesystem mounted at /sys/kernel/security that security modules use to
// expose policy-loading and introspection files. SACK's event channel
// ("SACKfs", /sys/kernel/security/SACK/events in the paper) is built on
// it, as is the simulated AppArmor profile loader.
//
// The mount integrates into the shared vfs tree so every access goes
// through the ordinary open/read/write syscall paths — and therefore
// through the LSM hook chain — exactly as in the real kernel.
package securityfs

import (
	"fmt"
	"sync"

	"repro/internal/sys"
	"repro/internal/vfs"
)

// MountPoint is where securityfs lives, as in the paper's pseudo-file
// interface description.
const MountPoint = "/sys/kernel/security"

// FS manages the securityfs subtree within a host vfs.
type FS struct {
	host *vfs.FS

	mu    sync.Mutex
	dirs  map[string]bool // registered module directories
	files map[string]*vfs.Inode
}

// Mount creates the securityfs mount point in the host filesystem. The
// tree is owned by root with conservative permissions, so non-root tasks
// cannot even traverse into module directories unless a module relaxes
// the mode on a specific file.
func Mount(host *vfs.FS) (*FS, error) {
	if _, err := host.MkdirAll(MountPoint, 0o755, 0, 0); err != nil {
		return nil, fmt.Errorf("securityfs: mount: %w", err)
	}
	return &FS{
		host:  host,
		dirs:  make(map[string]bool),
		files: make(map[string]*vfs.Inode),
	}, nil
}

// CreateDir registers a module directory (e.g. "SACK", "apparmor") and
// returns its absolute path.
func (s *FS) CreateDir(name string) (string, error) {
	if name == "" {
		return "", sys.EINVAL
	}
	path := MountPoint + "/" + name
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirs[name] {
		return "", sys.EEXIST
	}
	if _, err := s.host.MkdirAll(path, 0o755, 0, 0); err != nil {
		return "", err
	}
	s.dirs[name] = true
	return path, nil
}

// CreateFile registers a handler-backed pseudo-file inside a previously
// created module directory and returns its absolute path. perm controls
// who may open it (DAC check happens in the kernel's open path); handlers
// additionally see the caller's credentials for capability checks.
func (s *FS) CreateFile(dir, name string, perm vfs.Mode, h vfs.NodeHandler) (string, error) {
	if name == "" || h == nil {
		return "", sys.EINVAL
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirs[dir] {
		return "", sys.ENOENT
	}
	path := MountPoint + "/" + dir + "/" + name
	node, err := s.host.CreateHandler(path, vfs.ModeRegular|perm.Perm(), 0, 0, h)
	if err != nil {
		return "", err
	}
	s.files[path] = node
	return path, nil
}

// Remove unregisters a pseudo-file.
func (s *FS) Remove(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; !ok {
		return sys.ENOENT
	}
	delete(s.files, path)
	return s.host.Unlink(path)
}

// Paths lists the registered pseudo-file paths (for introspection tests).
func (s *FS) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	return out
}

// FuncFile adapts plain functions into a NodeHandler. Nil members reject
// the corresponding operation, so a read-only file simply leaves OnWrite
// nil. Reads are whole-content: OnRead produces the full content and
// ReadAt serves the requested window, which matches single-shot
// seq_file-style securityfs reads.
type FuncFile struct {
	OnRead  func(cred *sys.Cred) ([]byte, error)
	OnWrite func(cred *sys.Cred, data []byte) error
	OnIoctl func(cred *sys.Cred, cmd, arg uint64) (uint64, error)
}

// ReadAt implements vfs.NodeHandler.
func (f *FuncFile) ReadAt(cred *sys.Cred, buf []byte, off int64) (int, error) {
	if f.OnRead == nil {
		return 0, sys.EACCES
	}
	content, err := f.OnRead(cred)
	if err != nil {
		return 0, err
	}
	if off >= int64(len(content)) {
		return 0, nil
	}
	return copy(buf, content[off:]), nil
}

// WriteAt implements vfs.NodeHandler. Offsets are ignored: each write is
// one complete command, as with echo > pseudo-file usage.
func (f *FuncFile) WriteAt(cred *sys.Cred, data []byte, off int64) (int, error) {
	if f.OnWrite == nil {
		return 0, sys.EACCES
	}
	if err := f.OnWrite(cred, data); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Ioctl implements vfs.NodeHandler.
func (f *FuncFile) Ioctl(cred *sys.Cred, cmd, arg uint64) (uint64, error) {
	if f.OnIoctl == nil {
		return 0, sys.ENOTTY
	}
	return f.OnIoctl(cred, cmd, arg)
}
