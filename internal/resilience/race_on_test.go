//go:build race

package resilience

// raceEnabled reports whether the race detector is active.
// sync.Pool deliberately discards items at random under -race, so the
// zero-alloc guard is only meaningful without it.
const raceEnabled = true
