package resilience

import (
	"context"
	"testing"
	"time"
)

// happyStack is the agent-shaped stack minus the policies that
// inherently spawn goroutines (timeout, hedge): those buy isolation at
// the cost of a goroutine + channel per call and are excluded from the
// zero-alloc guarantee.
func happyStack() Policy {
	return Stack(
		NewFallback(nil, func(ctx context.Context, err error) error { return err }),
		NewBreaker(BreakerConfig{Failures: 5, Cooldown: time.Second}),
		NewBulkhead(BulkheadConfig{Capacity: 64, Queue: 256}),
		NewRetry(RetryConfig{Attempts: 3, Base: time.Millisecond, Seed: 1}),
	)
}

// TestStackHappyPathZeroAllocs is the in-tree guard for the benchmark
// claim: a wrapped successful call must not allocate.
func TestStackHappyPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc count is not meaningful")
	}
	p := happyStack()
	ctx := context.Background()
	op := Op(func(context.Context) error { return nil })
	// Warm the frame pool.
	if err := p.Do(ctx, op); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		if err := p.Do(ctx, op); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("stacked happy path allocates %.2f objects/call, want 0", avg)
	}
}

// TestResilienceOverheadGuard is the bench-smoke regression fence for
// the stack's happy-path cost: a wrapped successful call must stay
// under 1µs. (The measured overhead is ~150ns — the slack absorbs CI
// noise.)
func TestResilienceOverheadGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("timing fence is not meaningful under -race instrumentation")
	}
	p := happyStack()
	ctx := context.Background()
	op := Op(func(context.Context) error { return nil })
	best := time.Duration(1 << 62)
	const rounds, iters = 5, 20000
	for r := 0; r < rounds; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := p.Do(ctx, op); err != nil {
				t.Fatal(err)
			}
		}
		if d := time.Since(start) / iters; d < best {
			best = d
		}
	}
	t.Logf("stacked happy path: %v/op", best)
	if best > time.Microsecond {
		t.Errorf("stacked happy path took %v/op, budget 1µs", best)
	}
}

// BenchmarkResilienceOverhead measures the cost a full
// breaker+bulkhead+retry+fallback stack adds to a trivial successful
// operation. make bench-smoke asserts 0 allocs/op and <1µs/op.
func BenchmarkResilienceOverhead(b *testing.B) {
	p := happyStack()
	ctx := context.Background()
	op := Op(func(context.Context) error { return nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Do(ctx, op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBareOp is the baseline for BenchmarkResilienceOverhead.
func BenchmarkBareOp(b *testing.B) {
	ctx := context.Background()
	op := Op(func(context.Context) error { return nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := op(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
