package resilience

import (
	"context"
	"time"

	"repro/internal/shard"
)

// DefaultTimeout bounds one guarded operation.
const DefaultTimeout = 5 * time.Second

// TimeoutConfig tunes a timeout policy.
type TimeoutConfig struct {
	// Limit is the per-operation budget (default DefaultTimeout).
	Limit time.Duration
	// Clock drives the deadline (default RealClock).
	Clock Clock
}

// Timeout bounds one operation: when Limit elapses first, the
// operation's context is cancelled with cause ErrTimeout and Do
// returns ErrTimeout without waiting for the abandoned attempt (which
// must honour its context). Unlike context.WithTimeout, the deadline
// runs on the injected clock, so timeout tests advance virtual time
// instead of sleeping.
type Timeout struct {
	cfg      TimeoutConfig
	timeouts shard.Counter
}

// NewTimeout builds a timeout policy.
func NewTimeout(cfg TimeoutConfig) *Timeout {
	if cfg.Limit <= 0 {
		cfg.Limit = DefaultTimeout
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	return &Timeout{cfg: cfg, timeouts: shard.NewCounter()}
}

// Do implements Policy.
func (t *Timeout) Do(ctx context.Context, op Op) error {
	opCtx, cancel := context.WithCancelCause(ctx)
	done := make(chan error, 1)
	go func() { done <- op(opCtx) }()
	select {
	case err := <-done:
		cancel(nil)
		return err
	case <-t.cfg.Clock.After(t.cfg.Limit):
		cancel(ErrTimeout)
		t.timeouts.Add(1)
		return ErrTimeout
	case <-ctx.Done():
		cancel(context.Cause(ctx))
		return context.Cause(ctx)
	}
}

// Detaches implements Detaching: a timed-out op keeps running in its
// abandoned goroutine (cancelled via its context) after Do returns.
func (t *Timeout) Detaches() {}

// Stats implements Observable.
func (t *Timeout) Stats() PolicyStats {
	return PolicyStats{
		Policy:   "timeout",
		Counters: map[string]uint64{"timeouts": t.timeouts.Load()},
	}
}
