package resilience

import (
	"fmt"
	"sort"
	"strings"
)

// Render formats policy stats in the flat key=value style of the
// securityfs stats files, one line per policy, counters sorted — the
// view `sackctl fleet status` and `sackmon -fleet` embed.
func Render(stats []PolicyStats) string {
	var b strings.Builder
	for _, st := range stats {
		fmt.Fprintf(&b, "policy %-9s", st.Policy)
		if st.State != "" {
			fmt.Fprintf(&b, " state=%s", st.State)
		}
		keys := make([]string, 0, len(st.Counters))
		for k := range st.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, st.Counters[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
