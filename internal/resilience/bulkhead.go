package resilience

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/shard"
)

// Bulkhead defaults.
const (
	DefaultBulkheadCapacity = 64
	DefaultBulkheadQueue    = 256
)

// BulkheadConfig tunes a bulkhead. Zero values select defaults; a
// negative Queue means no queueing (admit or shed immediately).
type BulkheadConfig struct {
	// Capacity bounds concurrent admissions.
	Capacity int
	// Queue bounds callers waiting for an admission slot; a caller
	// arriving with the queue full is shed with ErrBulkheadFull.
	Queue int
}

// Bulkhead bounds concurrency: at most Capacity operations run at
// once, at most Queue callers wait for a slot, and everyone beyond
// that is shed immediately with ErrBulkheadFull. fleetd runs one per
// vehicle group, so a flooding group saturates its own compartment
// (and gets 429s) while other groups' ingestion is untouched.
type Bulkhead struct {
	sem      chan struct{}
	queueCap int64
	queued   atomic.Int64

	admitted shard.Counter
	shed     shard.Counter
}

// NewBulkhead builds a bulkhead.
func NewBulkhead(cfg BulkheadConfig) *Bulkhead {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultBulkheadCapacity
	}
	if cfg.Queue == 0 {
		cfg.Queue = DefaultBulkheadQueue
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	return &Bulkhead{
		sem:      make(chan struct{}, cfg.Capacity),
		queueCap: int64(cfg.Queue),
		admitted: shard.NewCounter(),
		shed:     shard.NewCounter(),
	}
}

// Do implements Policy.
func (b *Bulkhead) Do(ctx context.Context, op Op) error {
	select {
	case b.sem <- struct{}{}:
	default:
		// No free slot: take a bounded queue position or shed.
		if b.queued.Add(1) > b.queueCap {
			b.queued.Add(-1)
			b.shed.Add(1)
			return ErrBulkheadFull
		}
		select {
		case b.sem <- struct{}{}:
			b.queued.Add(-1)
		case <-ctx.Done():
			b.queued.Add(-1)
			return context.Cause(ctx)
		}
	}
	b.admitted.Add(1)
	defer func() { <-b.sem }()
	return op(ctx)
}

// Active reports operations currently admitted.
func (b *Bulkhead) Active() int { return len(b.sem) }

// Queued reports callers currently waiting for a slot.
func (b *Bulkhead) Queued() int { return int(b.queued.Load()) }

// Shed reports callers rejected with ErrBulkheadFull so far.
func (b *Bulkhead) Shed() uint64 { return b.shed.Load() }

// Admitted reports operations ever admitted.
func (b *Bulkhead) Admitted() uint64 { return b.admitted.Load() }

// Stats implements Observable.
func (b *Bulkhead) Stats() PolicyStats {
	return PolicyStats{
		Policy: "bulkhead",
		Counters: map[string]uint64{
			"active":   uint64(b.Active()),
			"queued":   uint64(b.Queued()),
			"admitted": b.admitted.Load(),
			"shed":     b.shed.Load(),
		},
	}
}

// KeyedBulkheads is a lazily populated family of identically sized
// bulkheads, one per key — fleetd's per-vehicle-group ingestion
// compartments.
type KeyedBulkheads struct {
	cfg BulkheadConfig
	mu  sync.Mutex
	m   map[string]*Bulkhead
}

// NewKeyedBulkheads builds the family; each key's bulkhead is created
// on first use with cfg.
func NewKeyedBulkheads(cfg BulkheadConfig) *KeyedBulkheads {
	return &KeyedBulkheads{cfg: cfg, m: make(map[string]*Bulkhead)}
}

// Get returns the key's bulkhead, creating it on first use.
func (k *KeyedBulkheads) Get(key string) *Bulkhead {
	k.mu.Lock()
	defer k.mu.Unlock()
	b := k.m[key]
	if b == nil {
		b = NewBulkhead(k.cfg)
		k.m[key] = b
	}
	return b
}

// Do runs op under the key's bulkhead.
func (k *KeyedBulkheads) Do(ctx context.Context, key string, op Op) error {
	return k.Get(key).Do(ctx, op)
}

// KeyedStats is one key's bulkhead snapshot.
type KeyedStats struct {
	Key      string `json:"key"`
	Active   int    `json:"active"`
	Queued   int    `json:"queued"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
}

// Stats snapshots every key's bulkhead, sorted by key.
func (k *KeyedBulkheads) Stats() []KeyedStats {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]KeyedStats, 0, len(k.m))
	for key, b := range k.m {
		out = append(out, KeyedStats{
			Key: key, Active: b.Active(), Queued: b.Queued(),
			Admitted: b.Admitted(), Shed: b.Shed(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
