package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// runtimeGosched yields the processor so another goroutine can make an
// observable state transition; no time is consumed.
func runtimeGosched() { runtime.Gosched() }

var errBoom = errors.New("boom")

func t0() time.Time { return time.Unix(1_700_000_000, 0) }

// --- Stack ---------------------------------------------------------------

// recorder logs enter order to prove stacking nests outermost-first.
type recorder struct {
	name string
	log  *[]string
}

func (r recorder) Do(ctx context.Context, op Op) error {
	*r.log = append(*r.log, r.name)
	return op(ctx)
}

func TestStackOrderAndPassthrough(t *testing.T) {
	var log []string
	p := Stack(recorder{"a", &log}, recorder{"b", &log}, recorder{"c", &log})
	if err := p.Do(context.Background(), func(context.Context) error {
		log = append(log, "op")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(log); got != "[a b c op]" {
		t.Fatalf("stack order = %v", log)
	}

	if err := Stack().Do(context.Background(), func(context.Context) error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("empty stack error = %v", err)
	}
	single := NewBreaker(BreakerConfig{})
	if Stack(single) != Policy(single) {
		t.Fatal("single-policy stack should return the policy itself")
	}
}

func TestStackConcurrentReuse(t *testing.T) {
	p := Stack(recorderlessPassthrough{}, recorderlessPassthrough{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				want := errBoom
				if (i+j)%2 == 0 {
					want = nil
				}
				err := p.Do(context.Background(), func(context.Context) error { return want })
				if !errors.Is(err, want) {
					t.Errorf("err = %v, want %v", err, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

type recorderlessPassthrough struct{}

func (recorderlessPassthrough) Do(ctx context.Context, op Op) error { return op(ctx) }

// TestStackDetachingPolicyAbandonedOps: a stack containing a Detaching
// policy (here Timeout) must keep each call's frame alive for the
// abandoned op goroutine — timed-out ops finish later without touching
// a recycled frame. Regression test: the pooled-frame fast path used
// to nil the op reference on return, and the abandoned goroutine then
// dereferenced it.
func TestStackDetachingPolicyAbandonedOps(t *testing.T) {
	clock := NewVirtualClock(t0())
	p := Stack(
		recorderlessPassthrough{},
		NewTimeout(TimeoutConfig{Limit: time.Millisecond, Clock: clock}),
	)
	const rounds = 64
	stop := make(chan struct{})
	defer close(stop)
	go func() { // fire each round's timeout as soon as its timer parks
		for {
			select {
			case <-stop:
				return
			default:
			}
			clock.BlockUntil(1)
			clock.Advance(time.Millisecond)
		}
	}()
	release := make(chan struct{})
	var finished sync.WaitGroup
	finished.Add(rounds)
	for i := 0; i < rounds; i++ {
		err := p.Do(context.Background(), func(ctx context.Context) error {
			defer finished.Done()
			<-release // every op outlives its Do by construction
			return nil
		})
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("round %d: err = %v, want ErrTimeout", i, err)
		}
	}
	close(release)
	finished.Wait()
}

// --- Breaker -------------------------------------------------------------

func TestBreakerTripProbeClose(t *testing.T) {
	clock := NewVirtualClock(t0())
	b := NewBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second, Probes: 2, Clock: clock})
	ctx := context.Background()
	fail := func(context.Context) error { return errBoom }
	ok := func(context.Context) error { return nil }

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if b.State() != Closed {
			t.Fatalf("state before failure %d = %v", i, b.State())
		}
		if err := b.Do(ctx, fail); !errors.Is(err, errBoom) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if b.State() != Open {
		t.Fatalf("state after trip = %v", b.State())
	}

	// Open: calls short-circuit without invoking the operation.
	called := false
	if err := b.Do(ctx, func(context.Context) error { called = true; return nil }); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open call error = %v", err)
	}
	if called {
		t.Fatal("open breaker invoked the operation")
	}

	// Cooldown lapses: one probe admitted; success moves toward Closed.
	clock.Advance(time.Second)
	if err := b.Do(ctx, ok); err != nil {
		t.Fatalf("probe 1: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after probe 1 = %v (want half-open, Probes=2)", b.State())
	}
	if err := b.Do(ctx, ok); err != nil {
		t.Fatalf("probe 2: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state after probe 2 = %v", b.State())
	}

	st := b.Stats()
	if st.Policy != "breaker" || st.State != "closed" {
		t.Fatalf("stats = %+v", st)
	}
	if st.Counters["trips"] != 1 || st.Counters["short_circuits"] != 1 {
		t.Fatalf("counters = %v", st.Counters)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := NewVirtualClock(t0())
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second, Clock: clock})
	ctx := context.Background()
	b.Do(ctx, func(context.Context) error { return errBoom })
	if b.State() != Open {
		t.Fatalf("state = %v", b.State())
	}
	clock.Advance(time.Second)
	if err := b.Do(ctx, func(context.Context) error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("probe error = %v", err)
	}
	if b.State() != Open {
		t.Fatalf("failed probe left state %v", b.State())
	}
	// The fresh open window enforces a fresh cooldown.
	if err := b.Do(ctx, func(context.Context) error { return nil }); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-reopen call error = %v", err)
	}
}

func TestBreakerSingleProbeSlot(t *testing.T) {
	clock := NewVirtualClock(t0())
	b := NewBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second, Clock: clock})
	ctx := context.Background()
	b.Do(ctx, func(context.Context) error { return errBoom })
	clock.Advance(time.Second)

	// First caller takes the probe slot and parks; a second caller must
	// short-circuit rather than pile onto a possibly-sick server.
	release := make(chan struct{})
	probeErr := make(chan error, 1)
	go func() {
		probeErr <- b.Do(ctx, func(context.Context) error { <-release; return nil })
	}()
	for b.State() != HalfOpen {
		// The probe transition happens inside admit; spin-yield until the
		// goroutine got there (no time involved).
		runtimeGosched()
	}
	if err := b.Do(ctx, func(context.Context) error { return nil }); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second probe error = %v", err)
	}
	close(release)
	if err := <-probeErr; err != nil {
		t.Fatalf("probe: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v", b.State())
	}
}

// --- Bulkhead ------------------------------------------------------------

func TestBulkheadAdmissionQueueShed(t *testing.T) {
	b := NewBulkhead(BulkheadConfig{Capacity: 2, Queue: 1})
	ctx := context.Background()

	release := make(chan struct{})
	errs := make(chan error, 4)
	started := make(chan struct{}, 2)
	// Two admitted operations occupy the compartment.
	for i := 0; i < 2; i++ {
		go func() {
			errs <- b.Do(ctx, func(context.Context) error {
				started <- struct{}{}
				<-release
				return nil
			})
		}()
	}
	<-started
	<-started

	// One caller queues (bounded), parked on the semaphore.
	queued := make(chan error, 1)
	go func() {
		queued <- b.Do(ctx, func(context.Context) error { return nil })
	}()
	for b.Queued() != 1 {
		runtimeGosched()
	}

	// The next caller overflows the queue and is shed immediately.
	if err := b.Do(ctx, func(context.Context) error { return nil }); !errors.Is(err, ErrBulkheadFull) {
		t.Fatalf("overflow error = %v", err)
	}
	if b.Shed() != 1 {
		t.Fatalf("shed = %d", b.Shed())
	}

	close(release)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := <-queued; err != nil {
		t.Fatalf("queued caller: %v", err)
	}
	if got := b.Admitted(); got != 3 {
		t.Fatalf("admitted = %d", got)
	}
}

func TestBulkheadQueuedCallerHonoursContext(t *testing.T) {
	b := NewBulkhead(BulkheadConfig{Capacity: 1, Queue: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	go b.Do(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started

	ctx, cancel := context.WithCancelCause(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- b.Do(ctx, func(context.Context) error { return nil })
	}()
	for b.Queued() != 1 {
		runtimeGosched()
	}
	cancel(errBoom)
	if err := <-done; !errors.Is(err, errBoom) {
		t.Fatalf("cancelled queue wait = %v", err)
	}
	close(release)
}

func TestKeyedBulkheadsIsolate(t *testing.T) {
	k := NewKeyedBulkheads(BulkheadConfig{Capacity: 1, Queue: -1})
	ctx := context.Background()
	release := make(chan struct{})
	started := make(chan struct{})
	go k.Do(ctx, "flood", func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started
	// flood's compartment is full (no queue): shed.
	if err := k.Do(ctx, "flood", func(context.Context) error { return nil }); !errors.Is(err, ErrBulkheadFull) {
		t.Fatalf("flood error = %v", err)
	}
	// quiet's compartment is untouched.
	if err := k.Do(ctx, "quiet", func(context.Context) error { return nil }); err != nil {
		t.Fatalf("quiet error = %v", err)
	}
	close(release)
	stats := k.Stats()
	if len(stats) != 2 || stats[0].Key != "flood" || stats[0].Shed != 1 || stats[1].Key != "quiet" || stats[1].Shed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// --- Retry ---------------------------------------------------------------

func TestRetryBackoffScheduleDeterministic(t *testing.T) {
	clock := NewAutoClock(t0())
	r := NewRetry(RetryConfig{Base: 100 * time.Millisecond, Max: 400 * time.Millisecond, Seed: 42, Clock: clock})

	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 5 {
			return errBoom
		}
		return nil
	})
	if err != nil || calls != 5 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}

	// The schedule is exactly the legacy full-jitter formula: pause ~
	// Uniform[0, ceiling], ceiling doubling 100ms -> 400ms (capped).
	rng := rand.New(rand.NewSource(42))
	want := []time.Duration{}
	ceiling := 100 * time.Millisecond
	for i := 0; i < 4; i++ {
		want = append(want, time.Duration(rng.Int63n(int64(ceiling)+1)))
		ceiling *= 2
		if ceiling > 400*time.Millisecond {
			ceiling = 400 * time.Millisecond
		}
	}
	got := clock.Slept()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("backoff schedule = %v, want %v", got, want)
	}
}

func TestRetryBoundedAttemptsAndAborts(t *testing.T) {
	clock := NewAutoClock(t0())
	r := NewRetry(RetryConfig{Attempts: 3, Base: time.Millisecond, Seed: 1, Clock: clock})
	calls := 0
	if err := r.Do(context.Background(), func(context.Context) error { calls++; return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	if st := r.Stats(); st.Counters["give_ups"] != 1 || st.Counters["retries"] != 2 {
		t.Fatalf("stats = %v", st.Counters)
	}

	// Context cancellation is never retried.
	calls = 0
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := r.Do(ctx, func(context.Context) error { calls++; return ctx.Err() })
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}

	// RetryOn filters.
	filtered := NewRetry(RetryConfig{Attempts: 5, Base: time.Millisecond, Seed: 1, Clock: clock,
		RetryOn: func(err error) bool { return !errors.Is(err, errBoom) }})
	calls = 0
	if err := filtered.Do(context.Background(), func(context.Context) error { calls++; return errBoom }); !errors.Is(err, errBoom) || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

// --- Timeout -------------------------------------------------------------

func TestTimeoutCancelsSlowOperation(t *testing.T) {
	// Fast path: the op finishes; no timer involvement needed. Uses its
	// own clock — even an unfired select arm parks a waiter, which would
	// skew BlockUntil below.
	fast := NewTimeout(TimeoutConfig{Limit: time.Second, Clock: NewVirtualClock(t0())})
	if err := fast.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}

	clock := NewVirtualClock(t0())
	to := NewTimeout(TimeoutConfig{Limit: time.Second, Clock: clock})

	// Slow path: the op parks on its context; advancing virtual time
	// past the limit cancels it with cause ErrTimeout.
	opSawCause := make(chan error, 1)
	done := make(chan error, 1)
	go func() {
		done <- to.Do(context.Background(), func(ctx context.Context) error {
			<-ctx.Done()
			opSawCause <- context.Cause(ctx)
			return context.Cause(ctx)
		})
	}()
	clock.BlockUntil(1)
	clock.Advance(time.Second)
	if err := <-done; !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout error = %v", err)
	}
	if cause := <-opSawCause; !errors.Is(cause, ErrTimeout) {
		t.Fatalf("op context cause = %v", cause)
	}
	if st := to.Stats(); st.Counters["timeouts"] != 1 {
		t.Fatalf("stats = %v", st.Counters)
	}
}

// --- Hedge ---------------------------------------------------------------

func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	clock := NewVirtualClock(t0())
	h := NewHedge(HedgeConfig{Threshold: 100 * time.Millisecond, Clock: clock})

	primCause := make(chan error, 1)
	attempts := make(chan int, 2)
	var n int32
	var mu sync.Mutex
	done := make(chan error, 1)
	go func() {
		done <- h.Do(context.Background(), func(ctx context.Context) error {
			mu.Lock()
			n++
			me := n
			mu.Unlock()
			attempts <- int(me)
			if me == 1 { // primary: hang until hedged out
				<-ctx.Done()
				primCause <- context.Cause(ctx)
				return context.Cause(ctx)
			}
			return nil // hedge: instant success
		})
	}()
	<-attempts // primary launched and registered
	clock.BlockUntil(1)
	clock.Advance(100 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("hedged call error = %v", err)
	}
	if cause := <-primCause; !errors.Is(cause, ErrHedgeLost) {
		t.Fatalf("losing primary cause = %v", cause)
	}
	if st := h.Stats(); st.Counters["launches"] != 1 || st.Counters["wins"] != 1 {
		t.Fatalf("stats = %v", st.Counters)
	}
}

func TestHedgeFastPrimarySkipsHedge(t *testing.T) {
	clock := NewVirtualClock(t0())
	h := NewHedge(HedgeConfig{Threshold: time.Second, Clock: clock})
	calls := 0
	if err := h.Do(context.Background(), func(context.Context) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	if st := h.Stats(); st.Counters["launches"] != 0 {
		t.Fatalf("stats = %v", st.Counters)
	}
}

func TestHedgeBothFailReturnsPrimaryError(t *testing.T) {
	clock := NewVirtualClock(t0())
	h := NewHedge(HedgeConfig{Threshold: 50 * time.Millisecond, Clock: clock})
	primErr := errors.New("primary failed")
	hedgeErr := errors.New("hedge failed")

	var mu sync.Mutex
	n := 0
	hold := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- h.Do(context.Background(), func(ctx context.Context) error {
			mu.Lock()
			n++
			me := n
			mu.Unlock()
			if me == 1 {
				started <- struct{}{}
				<-hold // fail only after the hedge launched
				return primErr
			}
			close(hold)
			return hedgeErr
		})
	}()
	<-started // primary registered before the hedge can launch
	clock.BlockUntil(1)
	clock.Advance(50 * time.Millisecond)
	if err := <-done; !errors.Is(err, primErr) {
		t.Fatalf("error = %v, want primary's", err)
	}
}

// --- Fallback ------------------------------------------------------------

func TestFallbackRescuesMatchedErrors(t *testing.T) {
	f := NewFallback(
		func(err error) bool { return errors.Is(err, ErrCircuitOpen) },
		func(ctx context.Context, err error) error { return nil },
	)
	ctx := context.Background()
	if err := f.Do(ctx, func(context.Context) error { return ErrCircuitOpen }); err != nil {
		t.Fatalf("matched failure not rescued: %v", err)
	}
	if err := f.Do(ctx, func(context.Context) error { return errBoom }); !errors.Is(err, errBoom) {
		t.Fatalf("unmatched failure rewritten: %v", err)
	}
	if f.Rescued() != 1 {
		t.Fatalf("rescued = %d", f.Rescued())
	}
}

// --- Introspection -------------------------------------------------------

func TestStatsOfAndBreakerOf(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	r := NewRetry(RetryConfig{Seed: 1})
	p := Stack(NewFallback(nil, func(ctx context.Context, err error) error { return err }), b, r)

	stats := StatsOf(p)
	if len(stats) != 3 || stats[0].Policy != "fallback" || stats[1].Policy != "breaker" || stats[2].Policy != "retry" {
		t.Fatalf("StatsOf = %+v", stats)
	}
	if BreakerOf(p) != b {
		t.Fatal("BreakerOf missed the stacked breaker")
	}
	if BreakerOf(r) != nil {
		t.Fatal("BreakerOf invented a breaker")
	}
	out := Render(stats)
	for _, want := range []string{"policy fallback", "policy breaker", "state=closed", "policy retry"} {
		if !containsStr(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// --- HTTP mapping --------------------------------------------------------

func TestHTTPStatusDistinct(t *testing.T) {
	seen := map[int]error{}
	for _, err := range []error{ErrCircuitOpen, ErrBulkheadFull, ErrTimeout, ErrHedgeLost} {
		code := HTTPStatus(err)
		if prev, dup := seen[code]; dup {
			t.Fatalf("status %d shared by %v and %v", code, prev, err)
		}
		seen[code] = err
	}
	if HTTPStatus(nil) != 200 || HTTPStatus(errBoom) != 500 {
		t.Fatal("nil/unknown mapping")
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (haystack == needle || indexOf(haystack, needle) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
