package resilience

import (
	"context"
	"time"

	"repro/internal/shard"
)

// DefaultHedgeThreshold is the latency after which a hedge launches.
const DefaultHedgeThreshold = 100 * time.Millisecond

// HedgeConfig tunes a hedge policy.
type HedgeConfig struct {
	// Threshold is how long the primary attempt may run before a
	// secondary attempt is launched (default DefaultHedgeThreshold).
	Threshold time.Duration
	// Clock drives the threshold timer (default RealClock).
	Clock Clock
}

// Hedge trades work for tail latency: if the primary attempt has not
// finished within Threshold, a second identical attempt launches and
// the first success wins. The loser's context is cancelled with cause
// ErrHedgeLost; when both attempts fail, the primary's error is
// returned. Operations must be idempotent (the fleet agent's fetch and
// dedup-by-sequence upload both are).
type Hedge struct {
	cfg HedgeConfig

	launches shard.Counter // hedges actually launched
	wins     shard.Counter // hedges that beat the primary
}

// NewHedge builds a hedge policy.
func NewHedge(cfg HedgeConfig) *Hedge {
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultHedgeThreshold
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	return &Hedge{cfg: cfg, launches: shard.NewCounter(), wins: shard.NewCounter()}
}

// Do implements Policy.
func (h *Hedge) Do(ctx context.Context, op Op) error {
	primCtx, primCancel := context.WithCancelCause(ctx)
	defer primCancel(nil) // no-op after a cause was set
	prim := make(chan error, 1)
	go func() { prim <- op(primCtx) }()

	select {
	case err := <-prim:
		primCancel(nil)
		return err
	case <-h.cfg.Clock.After(h.cfg.Threshold):
	case <-ctx.Done():
		primCancel(context.Cause(ctx))
		return context.Cause(ctx)
	}

	// Threshold lapsed with the primary still in flight: hedge.
	h.launches.Add(1)
	hedgeCtx, hedgeCancel := context.WithCancelCause(ctx)
	defer hedgeCancel(nil) // no-op after a cause was set
	hedge := make(chan error, 1)
	go func() { hedge <- op(hedgeCtx) }()

	// First success wins; a nil'd channel drops out of the select. When
	// both fail, the primary's error stands.
	var primErr error
	for prim != nil || hedge != nil {
		select {
		case err := <-prim:
			if err == nil {
				hedgeCancel(ErrHedgeLost)
				return nil
			}
			primErr, prim = err, nil
		case err := <-hedge:
			if err == nil {
				primCancel(ErrHedgeLost)
				h.wins.Add(1)
				return nil
			}
			hedge = nil
		case <-ctx.Done():
			primCancel(context.Cause(ctx))
			hedgeCancel(context.Cause(ctx))
			return context.Cause(ctx)
		}
	}
	return primErr
}

// Detaches implements Detaching: the losing attempt of a hedged pair
// keeps running in its abandoned goroutine after Do returns.
func (h *Hedge) Detaches() {}

// Stats implements Observable.
func (h *Hedge) Stats() PolicyStats {
	return PolicyStats{
		Policy: "hedge",
		Counters: map[string]uint64{
			"launches": h.launches.Load(),
			"wins":     h.wins.Load(),
		},
	}
}
