package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for every policy in the kit, so breaker
// cooldowns, retry backoffs, hedge thresholds, and timeouts are all
// testable in virtual time with no real sleeps. The production
// implementation is RealClock; tests use VirtualClock.
type Clock interface {
	Now() time.Time
	// After returns a channel that receives once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d elapses or ctx is done, returning the
	// context's cause in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock reads the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}

// VirtualClock is a deterministic clock for tests. Two modes:
//
//   - Manual (default): After registers a waiter that fires when
//     Advance moves the clock past its deadline; Sleep parks on such a
//     waiter. Tests coordinate with BlockUntil, which waits until a
//     given number of waiters are parked — no polling, no real time.
//   - Auto-advance (NewAutoClock or SetAutoAdvance): Sleep advances
//     the clock by the requested duration immediately and returns, so
//     retry/backoff loops run to completion without any goroutine
//     coordination. Every requested sleep is recorded for assertions
//     (Slept). After timers are deadline waiters in both modes: they
//     fire when virtual time reaches them — advanced by sleeps or
//     Advance — so a Timeout policy sharing an auto clock with a retry
//     policy only fires when backoff actually consumes its limit, not
//     instantly.
type VirtualClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	auto    bool
	waiters []*virtualWaiter
	slept   []time.Duration
}

type virtualWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewVirtualClock starts a manual virtual clock at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	c := &VirtualClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// NewAutoClock starts a virtual clock whose sleeps complete
// immediately, advancing virtual time by the requested amount.
func NewAutoClock(start time.Time) *VirtualClock {
	c := NewVirtualClock(start)
	c.auto = true
	return c
}

// SetAutoAdvance toggles auto-advance mode.
func (c *VirtualClock) SetAutoAdvance(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.auto = on
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. The channel fires when virtual time reaches
// the deadline — via Advance, or via auto-mode sleeps moving the clock.
func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, &virtualWaiter{at: c.now.Add(d), ch: ch})
	c.cond.Broadcast()
	return ch
}

// Sleep implements Clock.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	if c.auto || d <= 0 {
		c.now = c.now.Add(d)
		c.slept = append(c.slept, d)
		c.fireDueLocked()
		c.mu.Unlock()
		return ctx.Err()
	}
	c.slept = append(c.slept, d)
	w := &virtualWaiter{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.waiters = append(c.waiters, w)
	c.cond.Broadcast()
	c.mu.Unlock()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-w.ch:
		return nil
	}
}

// Advance moves virtual time forward, firing every waiter whose
// deadline is reached.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.fireDueLocked()
}

// fireDueLocked delivers to every waiter whose deadline has been
// reached. Callers hold c.mu.
func (c *VirtualClock) fireDueLocked() {
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// BlockUntil waits (without consuming real time beyond scheduling)
// until at least n waiters are parked on the clock — the deterministic
// rendezvous for tests that Advance from another goroutine.
func (c *VirtualClock) BlockUntil(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.waiters) < n {
		c.cond.Wait()
	}
}

// Slept returns every sleep duration requested so far — the schedule a
// backoff policy actually asked for, used by equivalence tests.
func (c *VirtualClock) Slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}
