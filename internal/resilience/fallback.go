package resilience

import (
	"context"

	"repro/internal/shard"
)

// FallbackFunc rescues a failed operation: it receives the failure and
// returns nil to substitute a degraded success (serve a cached bundle,
// a default answer) or an error — typically the original — to let the
// failure stand.
type FallbackFunc func(ctx context.Context, err error) error

// Fallback turns selected failures into degraded successes. It sits
// outermost in a stack so it also rescues breaker short-circuits and
// bulkhead sheds — the fleet agent's fallback serves the last applied
// bundle when the control plane is unreachable, keeping the vehicle
// loop fed.
type Fallback struct {
	// Match, when set, restricts which errors the fallback handles;
	// others pass through untouched. Caller-side aborts (context
	// cancellation) always pass through.
	match func(error) bool
	fn    FallbackFunc

	rescued shard.Counter
}

// NewFallback builds a fallback around fn. match may be nil (handle
// every failure).
func NewFallback(match func(error) bool, fn FallbackFunc) *Fallback {
	return &Fallback{match: match, fn: fn, rescued: shard.NewCounter()}
}

// Do implements Policy.
func (f *Fallback) Do(ctx context.Context, op Op) error {
	err := op(ctx)
	if err == nil || abortive(err) || (f.match != nil && !f.match(err)) {
		return err
	}
	if ferr := f.fn(ctx, err); ferr != nil {
		return ferr
	}
	f.rescued.Add(1)
	return nil
}

// Rescued reports how many failures the fallback absorbed.
func (f *Fallback) Rescued() uint64 { return f.rescued.Load() }

// Stats implements Observable.
func (f *Fallback) Stats() PolicyStats {
	return PolicyStats{
		Policy:   "fallback",
		Counters: map[string]uint64{"rescued": f.rescued.Load()},
	}
}
