package resilience

import (
	"context"
	"sync"
	"time"

	"repro/internal/shard"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

// Breaker states.
const (
	Closed BreakerState = iota // calls flow; consecutive failures are counted
	Open                       // calls short-circuit with ErrCircuitOpen until the cooldown lapses
	HalfOpen                   // one probe call at a time; successes close, a failure re-opens
)

// String names the state for renders.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker defaults.
const (
	DefaultBreakerFailures = 5
	DefaultBreakerCooldown = time.Second
	DefaultBreakerProbes   = 1
)

// BreakerConfig tunes a circuit breaker. Zero values select defaults.
type BreakerConfig struct {
	// Failures is how many consecutive failures trip the breaker.
	Failures int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe.
	Cooldown time.Duration
	// Probes is how many consecutive half-open successes close the
	// breaker again.
	Probes int
	// Clock drives cooldown timing (default RealClock).
	Clock Clock
}

// Breaker is a deterministic closed/open/half-open circuit breaker:
// Failures consecutive failures trip it open; after Cooldown one probe
// call at a time is admitted; Probes consecutive probe successes close
// it, any probe failure re-opens it. While open (or while the probe
// slot is taken) calls fail fast with ErrCircuitOpen — the operation is
// never invoked, which is what keeps a vehicle's poll loop latency
// bounded when the control plane stalls.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int  // consecutive failures while closed
	probeOK  int  // consecutive successes while half-open
	probing  bool // a half-open probe is in flight
	openedAt time.Time

	successes shard.Counter
	failures  shard.Counter
	trips     shard.Counter
	shorts    shard.Counter // short-circuited calls
}

// NewBreaker builds a circuit breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Failures <= 0 {
		cfg.Failures = DefaultBreakerFailures
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultBreakerCooldown
	}
	if cfg.Probes <= 0 {
		cfg.Probes = DefaultBreakerProbes
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	return &Breaker{
		cfg:       cfg,
		successes: shard.NewCounter(),
		failures:  shard.NewCounter(),
		trips:     shard.NewCounter(),
		shorts:    shard.NewCounter(),
	}
}

// Do implements Policy.
func (b *Breaker) Do(ctx context.Context, op Op) error {
	probe, err := b.admit()
	if err != nil {
		return err
	}
	opErr := op(ctx)
	b.record(opErr, probe)
	return opErr
}

// admit decides whether a call may proceed; probe reports whether it
// holds the half-open probe slot.
func (b *Breaker) admit() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		if b.cfg.Clock.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.shorts.Add(1)
			return false, ErrCircuitOpen
		}
		b.state = HalfOpen
		b.probeOK = 0
		b.probing = true
		return true, nil
	case HalfOpen:
		if b.probing {
			b.shorts.Add(1)
			return false, ErrCircuitOpen
		}
		b.probing = true
		return true, nil
	}
	return false, nil
}

// record folds one operation result into the state machine. Caller-side
// aborts (context cancellation) release the probe slot without counting
// either way.
func (b *Breaker) record(opErr error, probe bool) {
	if opErr != nil && abortive(opErr) {
		if probe {
			b.mu.Lock()
			b.probing = false
			b.mu.Unlock()
		}
		return
	}
	if opErr == nil {
		b.successes.Add(1)
	} else {
		b.failures.Add(1)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	switch b.state {
	case Closed:
		if opErr == nil {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.Failures {
			b.trip()
		}
	case HalfOpen:
		if !probe {
			// A straggler admitted before the trip; its verdict belongs
			// to the old closed window, not the probe sequence.
			return
		}
		if opErr != nil {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.Probes {
			b.state = Closed
			b.fails = 0
		}
	case Open:
		// A straggler finished after the trip; the verdict is stale.
	}
}

// trip opens the breaker. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Clock.Now()
	b.fails = 0
	b.probeOK = 0
	b.trips.Add(1)
}

// State returns the breaker's current position, accounting for a lapsed
// cooldown (an Open breaker past its cooldown reports Open until the
// next call transitions it; renders show the stored state).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats implements Observable.
func (b *Breaker) Stats() PolicyStats {
	return PolicyStats{
		Policy: "breaker",
		State:  b.State().String(),
		Counters: map[string]uint64{
			"successes":      b.successes.Load(),
			"failures":       b.failures.Load(),
			"trips":          b.trips.Load(),
			"short_circuits": b.shorts.Load(),
		},
	}
}
