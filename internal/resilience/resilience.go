// Package resilience is a small composable policy kit for the fleet
// control plane: circuit breaker, bulkhead, hedge, retry with jittered
// backoff, timeout, and fallback, each implementing one Policy
// interface and stackable with Stack. The vehicle-side fleet agent
// wraps its poll/upload RPCs in a stack (breaker + retry + timeout +
// fallback-to-cached-bundle) so a slow or flapping control plane never
// stalls the decision loop; fleetd wraps per-vehicle-group ingestion in
// bulkheads so one flooding group sheds load without starving others.
//
// Every policy takes an injectable Clock, so unit and chaos tests run
// entirely in virtual time — no real sleeps, deterministic under
// -race. Per-policy state counters are built on internal/shard's
// sharded counters and surfaced through Stats for the securityfs-style
// renders (`sackctl fleet status`, `sackmon -fleet`).
//
// Errors are typed, not stringly: ErrCircuitOpen, ErrBulkheadFull,
// ErrTimeout, ErrHedgeLost are errors.Is-matchable through any stack
// and map onto distinct HTTP statuses at the fleetd boundary (see
// HTTPStatus).
package resilience

import (
	"context"
	"errors"
	"net/http"
	"sync"
)

// Typed policy errors. Callers match with errors.Is; the fleet HTTP
// layer maps them to distinct status codes and back.
var (
	// ErrCircuitOpen: the breaker is open (or the single half-open probe
	// slot is taken); the call was short-circuited without reaching the
	// operation.
	ErrCircuitOpen = errors.New("resilience: circuit open")
	// ErrBulkheadFull: the bulkhead's concurrent admissions and bounded
	// queue are both full; the call was shed.
	ErrBulkheadFull = errors.New("resilience: bulkhead full")
	// ErrTimeout: the operation exceeded the timeout policy's limit. The
	// operation's context is cancelled with this cause.
	ErrTimeout = errors.New("resilience: operation timed out")
	// ErrHedgeLost: the other attempt of a hedged pair won; this
	// attempt's context is cancelled with this cause.
	ErrHedgeLost = errors.New("resilience: hedged attempt lost")
)

// HTTPStatus maps the typed error taxonomy onto distinct HTTP status
// codes — the contract fleetd serves and the fleet client inverts, so
// callers on either side of the wire match typed errors instead of
// strings. Unrecognised errors map to 500.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrBulkheadFull):
		return http.StatusTooManyRequests // 429: shed, retry later
	case errors.Is(err, ErrCircuitOpen):
		return http.StatusServiceUnavailable // 503: short-circuited
	case errors.Is(err, ErrTimeout):
		return http.StatusGatewayTimeout // 504: gave up waiting
	case errors.Is(err, ErrHedgeLost):
		return http.StatusBadGateway // 502: superseded by the winner
	default:
		return http.StatusInternalServerError
	}
}

// Op is one guarded operation. Implementations must honour ctx: the
// timeout and hedge policies cancel it (with ErrTimeout / ErrHedgeLost
// causes) to abandon an attempt.
type Op func(ctx context.Context) error

// Policy guards the execution of an operation. Implementations are
// safe for concurrent use; a policy instance carries state (breaker
// trips, bulkhead occupancy), so share one instance across the calls
// it should govern.
type Policy interface {
	// Do runs op under the policy and returns its error, or a typed
	// policy error when the call was short-circuited, shed, or timed
	// out.
	Do(ctx context.Context, op Op) error
}

// PolicyStats is one policy's observable state: a kind tag, the
// current state (breakers), and monotonic counters.
type PolicyStats struct {
	Policy   string            `json:"policy"`          // "breaker", "bulkhead", ...
	State    string            `json:"state,omitempty"` // breaker: closed/open/half-open
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// Observable is implemented by policies that expose state counters.
type Observable interface {
	Stats() PolicyStats
}

// abortive reports whether err is a caller-side abort (context
// cancellation or deadline) rather than an operation failure. Breakers
// do not count aborts as failures and retries do not retry them.
func abortive(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Detaching marks policies that can return from Do while the guarded
// operation is still running in a goroutine they abandoned (Timeout
// after the limit, Hedge's losing attempt). A stack containing one —
// at any nesting depth — never reuses call frames, because the zombie
// attempt keeps referencing its frame after Do returns.
type Detaching interface {
	Detaches()
}

// stack composes policies outermost-first. For stacks of purely
// synchronous policies, frames are pooled and the per-level closures
// are bound once per frame, so a stacked happy path adds no per-call
// allocations over the bare call (see BenchmarkResilienceOverhead).
// Stacks containing a Detaching policy allocate one fresh frame per
// call instead, which is what keeps an abandoned in-flight attempt
// safe: its frame is simply garbage once it finishes, never handed to
// another call.
type stack struct {
	policies []Policy
	pooled   bool
	frames   sync.Pool
}

type stackFrame struct {
	s     *stack
	op    Op
	bound []Op // bound[i] runs level i; created once per frame
}

// Stack composes policies into one: Stack(a, b, c).Do(ctx, op) runs
// a.Do wrapping b.Do wrapping c.Do wrapping op — the first policy is
// outermost. Stacking zero policies returns a passthrough; stacking
// one returns it unchanged.
func Stack(policies ...Policy) Policy {
	switch len(policies) {
	case 0:
		return passthrough{}
	case 1:
		return policies[0]
	}
	s := &stack{policies: policies, pooled: true}
	for _, p := range policies {
		if detaches(p) {
			s.pooled = false
			break
		}
	}
	s.frames.New = func() any {
		f := &stackFrame{s: s, bound: make([]Op, len(policies)+1)}
		for i := range f.bound {
			level := i
			f.bound[i] = func(ctx context.Context) error { return f.call(ctx, level) }
		}
		return f
	}
	return s
}

// detaches reports whether p (or any member, for nested stacks) can
// abandon an in-flight attempt after Do returns.
func detaches(p Policy) bool {
	switch v := p.(type) {
	case Detaching:
		return true
	case *stack:
		return !v.pooled
	}
	return false
}

func (f *stackFrame) call(ctx context.Context, level int) error {
	if level == len(f.s.policies) {
		return f.op(ctx)
	}
	return f.s.policies[level].Do(ctx, f.bound[level+1])
}

// Do implements Policy.
func (s *stack) Do(ctx context.Context, op Op) error {
	if !s.pooled {
		// A detaching member (timeout, hedge) may keep running op in an
		// abandoned goroutine after we return, so this frame can never
		// be recycled — let the abandoned attempt keep it alive and the
		// GC reclaim it afterwards.
		f := s.frames.New().(*stackFrame)
		f.op = op
		return f.call(ctx, 0)
	}
	f := s.frames.Get().(*stackFrame)
	f.op = op
	err := f.call(ctx, 0)
	f.op = nil
	s.frames.Put(f)
	return err
}

// Stats implements Observable: the stats of every observable member,
// outermost first.
func (s *stack) Stats() PolicyStats {
	// A stack has no state of its own; StatsOf flattens members.
	return PolicyStats{Policy: "stack"}
}

// Policies returns the stack members, outermost first (a single policy
// or passthrough returns itself/nothing via StatsOf instead).
func (s *stack) Policies() []Policy { return s.policies }

type passthrough struct{}

func (passthrough) Do(ctx context.Context, op Op) error { return op(ctx) }

// StatsOf flattens the observable state of a policy: a stack yields
// one entry per observable member (outermost first), a bare observable
// policy yields one entry, anything else none.
func StatsOf(p Policy) []PolicyStats {
	switch v := p.(type) {
	case *stack:
		var out []PolicyStats
		for _, member := range v.policies {
			out = append(out, StatsOf(member)...)
		}
		return out
	case Observable:
		return []PolicyStats{v.Stats()}
	default:
		return nil
	}
}

// BreakerOf returns the first circuit breaker found in p (walking into
// stacks, outermost first), or nil — the introspection hook status
// surfaces use to report breaker state.
func BreakerOf(p Policy) *Breaker {
	switch v := p.(type) {
	case *Breaker:
		return v
	case *stack:
		for _, member := range v.policies {
			if b := BreakerOf(member); b != nil {
				return b
			}
		}
	}
	return nil
}
