package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/shard"
)

// Retry defaults (mirroring the fleet agent's historical backoff).
const (
	DefaultRetryBase = 100 * time.Millisecond
	DefaultRetryMax  = 5 * time.Second
)

// RetryConfig tunes a retry policy. Zero values select defaults.
type RetryConfig struct {
	// Attempts bounds total tries (first call included); 0 means retry
	// until success or context cancellation.
	Attempts int
	// Base is the first backoff ceiling; it doubles after every failure
	// up to Max (full jitter: each pause is uniform in [0, ceiling]).
	Base time.Duration
	// Max caps the backoff ceiling.
	Max time.Duration
	// Seed seeds the jitter stream, making the backoff schedule
	// deterministic for a given failure sequence. 0 derives a seed from
	// the wall clock.
	Seed int64
	// Clock performs the backoff sleeps (default RealClock).
	Clock Clock
	// RetryOn, when set, restricts which errors are retried. Context
	// cancellation is never retried regardless.
	RetryOn func(error) bool
}

// Retry re-runs a failed operation with exponentially growing, fully
// jittered backoff — the kit form of the fleet agent's historical
// hand-rolled loop: pause ~ Uniform[0, ceiling], ceiling doubling from
// Base to Max. Caller-side aborts (context cancellation) are returned
// immediately, never retried.
type Retry struct {
	cfg RetryConfig

	mu  sync.Mutex
	rng *rand.Rand

	retries shard.Counter
	giveUps shard.Counter
}

// NewRetry builds a retry policy.
func NewRetry(cfg RetryConfig) *Retry {
	if cfg.Base <= 0 {
		cfg.Base = DefaultRetryBase
	}
	if cfg.Max <= 0 {
		cfg.Max = DefaultRetryMax
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Retry{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		retries: shard.NewCounter(),
		giveUps: shard.NewCounter(),
	}
}

// Do implements Policy.
func (r *Retry) Do(ctx context.Context, op Op) error {
	ceiling := r.cfg.Base
	for attempt := 1; ; attempt++ {
		err := op(ctx)
		if err == nil {
			return nil
		}
		if abortive(err) || (r.cfg.RetryOn != nil && !r.cfg.RetryOn(err)) {
			return err
		}
		if r.cfg.Attempts > 0 && attempt >= r.cfg.Attempts {
			r.giveUps.Add(1)
			return err
		}
		if serr := r.cfg.Clock.Sleep(ctx, r.pause(ceiling)); serr != nil {
			return err // context ended during backoff; surface the op error
		}
		ceiling *= 2
		if ceiling > r.cfg.Max {
			ceiling = r.cfg.Max
		}
		r.retries.Add(1)
	}
}

// pause draws one fully jittered backoff from the seeded stream:
// uniform in [0, ceiling].
func (r *Retry) pause(ceiling time.Duration) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(ceiling) + 1))
}

// Stats implements Observable.
func (r *Retry) Stats() PolicyStats {
	return PolicyStats{
		Policy: "retry",
		Counters: map[string]uint64{
			"retries":  r.retries.Load(),
			"give_ups": r.giveUps.Load(),
		},
	}
}
