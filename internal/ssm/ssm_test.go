package ssm

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// fig2Machine builds the paper's Fig. 2 example: emergency, driving,
// parking-with-driver, parking-without-driver.
func fig2Machine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(Config{
		States: []State{
			{Name: "driving", Encoding: 0},
			{Name: "emergency", Encoding: 1},
			{Name: "parking_with_driver", Encoding: 2},
			{Name: "parking_without_driver", Encoding: 3},
		},
		Initial: "parking_with_driver",
		Transitions: []Transition{
			{From: "parking_with_driver", Event: "start_driving", To: "driving"},
			{From: "driving", Event: "park", To: "parking_with_driver"},
			{From: "parking_with_driver", Event: "driver_leaves", To: "parking_without_driver"},
			{From: "parking_without_driver", Event: "driver_enters", To: "parking_with_driver"},
			{From: "driving", Event: "crash_detected", To: "emergency"},
			{From: "emergency", Event: "all_clear", To: "parking_with_driver"},
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestFig2Walkthrough(t *testing.T) {
	m := fig2Machine(t)
	steps := []struct {
		event Event
		want  string
		trans bool
	}{
		{"start_driving", "driving", true},
		{"crash_detected", "emergency", true},
		{"crash_detected", "emergency", false}, // already there; no rule
		{"all_clear", "parking_with_driver", true},
		{"driver_leaves", "parking_without_driver", true},
		{"start_driving", "parking_without_driver", false}, // nobody driving
		{"driver_enters", "parking_with_driver", true},
	}
	for i, s := range steps {
		trans, _, to := m.Deliver(s.event)
		if trans != s.trans || to.Name != s.want {
			t.Fatalf("step %d (%s): got trans=%v state=%s, want trans=%v state=%s",
				i, s.event, trans, to.Name, s.trans, s.want)
		}
	}
	transitions, ignored := m.Stats()
	if transitions != 5 || ignored != 2 {
		t.Fatalf("stats = (%d,%d), want (5,2)", transitions, ignored)
	}
}

func TestConstructionErrors(t *testing.T) {
	base := []State{{Name: "a", Encoding: 0}, {Name: "b", Encoding: 1}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no states", Config{Initial: "a"}},
		{"dup state", Config{States: []State{{Name: "a"}, {Name: "a", Encoding: 1}}, Initial: "a"}},
		{"dup encoding", Config{States: []State{{Name: "a"}, {Name: "b"}}, Initial: "a"}},
		{"bad initial", Config{States: base, Initial: "zz"}},
		{"bad from", Config{States: base, Initial: "a",
			Transitions: []Transition{{From: "zz", Event: "e", To: "a"}}}},
		{"bad to", Config{States: base, Initial: "a",
			Transitions: []Transition{{From: "a", Event: "e", To: "zz"}}}},
		{"nondeterministic", Config{States: base, Initial: "a",
			Transitions: []Transition{
				{From: "a", Event: "e", To: "a"},
				{From: "a", Event: "e", To: "b"},
			}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestListenersRunSynchronously(t *testing.T) {
	m := fig2Machine(t)
	var seen []string
	m.Subscribe(func(from, to State, ev Event) {
		seen = append(seen, fmt.Sprintf("%s->%s/%s", from.Name, to.Name, ev))
	})
	m.Deliver("start_driving")
	m.Deliver("crash_detected")
	if len(seen) != 2 || seen[1] != "driving->emergency/crash_detected" {
		t.Fatalf("listener log = %v", seen)
	}
}

func TestForceState(t *testing.T) {
	m := fig2Machine(t)
	if err := m.ForceState("emergency"); err != nil {
		t.Fatalf("ForceState: %v", err)
	}
	if m.Current().Name != "emergency" {
		t.Fatal("force did not apply")
	}
	if err := m.ForceState("bogus"); err == nil {
		t.Fatal("bogus state should fail")
	}
}

func TestCanHandleAndEvents(t *testing.T) {
	m := fig2Machine(t)
	if !m.CanHandle("start_driving") {
		t.Error("start_driving should be handleable in parking_with_driver")
	}
	if m.CanHandle("all_clear") {
		t.Error("all_clear should not be handleable in parking_with_driver")
	}
	evs := m.Events()
	if len(evs) != 6 {
		t.Fatalf("events = %v, want 6 distinct", evs)
	}
}

func TestConcurrentDeliverIsSerializable(t *testing.T) {
	// Two states, a<->b on "flip": after an even number of flips delivered
	// from racing goroutines, the machine must be back at "a", and the
	// transition count must equal the number of flips (every flip matches
	// in either state).
	m, err := New(Config{
		States:  []State{{Name: "a", Encoding: 0}, {Name: "b", Encoding: 1}},
		Initial: "a",
		Transitions: []Transition{
			{From: "a", Event: "flip", To: "b"},
			{From: "b", Event: "flip", To: "a"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const per = 250 // even total
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Deliver("flip")
			}
		}()
	}
	wg.Wait()
	transitions, ignored := m.Stats()
	if transitions != goroutines*per || ignored != 0 {
		t.Fatalf("stats = (%d,%d), want (%d,0)", transitions, ignored, goroutines*per)
	}
	if m.Current().Name != "a" {
		t.Fatalf("state = %s after even flips, want a", m.Current().Name)
	}
}

// Property: delivering any event sequence is deterministic — two machines
// with identical configuration end in identical states.
func TestPropertyDeterminism(t *testing.T) {
	build := func() *Machine {
		m, err := New(Config{
			States: []State{
				{Name: "s0", Encoding: 0}, {Name: "s1", Encoding: 1},
				{Name: "s2", Encoding: 2}, {Name: "s3", Encoding: 3},
			},
			Initial: "s0",
			Transitions: []Transition{
				{From: "s0", Event: "e0", To: "s1"},
				{From: "s1", Event: "e1", To: "s2"},
				{From: "s2", Event: "e2", To: "s3"},
				{From: "s3", Event: "e3", To: "s0"},
				{From: "s1", Event: "e0", To: "s0"},
				{From: "s2", Event: "e0", To: "s0"},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	f := func(seq []uint8) bool {
		a, b := build(), build()
		for _, x := range seq {
			ev := Event(fmt.Sprintf("e%d", x%5)) // e4 never matches
			a.Deliver(ev)
			b.Deliver(ev)
		}
		at, ai := a.Stats()
		bt, bi := b.Stats()
		return a.Current() == b.Current() && at == bt && ai == bi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the transition count plus ignored count equals delivered
// events.
func TestPropertyEventAccounting(t *testing.T) {
	f := func(seq []uint8) bool {
		m, err := New(Config{
			States:  []State{{Name: "a", Encoding: 0}, {Name: "b", Encoding: 1}},
			Initial: "a",
			Transitions: []Transition{
				{From: "a", Event: "go", To: "b"},
				{From: "b", Event: "back", To: "a"},
			},
		})
		if err != nil {
			return false
		}
		events := []Event{"go", "back", "noop"}
		for _, x := range seq {
			m.Deliver(events[int(x)%len(events)])
		}
		transitions, ignored := m.Stats()
		return transitions+ignored == uint64(len(seq))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCurrent(b *testing.B) {
	m, _ := New(Config{
		States:      []State{{Name: "a", Encoding: 0}},
		Initial:     "a",
		Transitions: nil,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Current()
	}
}

func BenchmarkDeliverTransition(b *testing.B) {
	m, _ := New(Config{
		States:  []State{{Name: "a", Encoding: 0}, {Name: "b", Encoding: 1}},
		Initial: "a",
		Transitions: []Transition{
			{From: "a", Event: "flip", To: "b"},
			{From: "b", Event: "flip", To: "a"},
		},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Deliver("flip")
	}
}

func TestTransitionsEnumeration(t *testing.T) {
	m := fig2Machine(t)
	trs := m.Transitions()
	if len(trs) != 6 {
		t.Fatalf("Transitions() = %d rules, want 6", len(trs))
	}
	for i := 1; i < len(trs); i++ {
		a, b := trs[i-1], trs[i]
		if a.From > b.From || (a.From == b.From && a.Event >= b.Event) {
			t.Fatalf("enumeration not ordered: %v before %v", a, b)
		}
	}
	// Spot-check one rule and determinism across calls.
	found := false
	for _, tr := range trs {
		if tr.From == "driving" && tr.Event == "crash_detected" && tr.To == "emergency" {
			found = true
		}
	}
	if !found {
		t.Fatal("crash_detected rule missing from enumeration")
	}
	again := m.Transitions()
	for i := range trs {
		if trs[i] != again[i] {
			t.Fatal("enumeration not deterministic")
		}
	}
}
