// Package ssm implements SACK's situation state machine: the kernel-side
// automaton that holds the current situation state (the new security
// context the paper introduces) and transitions it on situation events
// delivered from user space. The event-matching loop follows the paper's
// Algorithm 1: on a matching transition rule the machine moves to the
// target state and notifies listeners (the adaptive policy enforcer),
// which re-derive P = f(SS) and MR = g(P).
package ssm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// State is a situation state: a name plus the numeric encoding used as a
// compact security context value in the kernel.
type State struct {
	Name     string
	Encoding uint32
}

// Event is a situation event name ("crash_detected", "ignition_on"...).
type Event string

// Transition is one rule TR_i: on Event in state From, move to state To.
type Transition struct {
	From  string
	Event Event
	To    string
}

// Listener observes committed transitions. Listeners run synchronously
// inside Deliver, before the next event can be processed, so enforcement
// state is never behind the machine state.
type Listener func(from, to State, ev Event)

type transKey struct {
	from  string
	event Event
}

// Machine is the situation state machine. The current state is read with
// an atomic load (the enforcement fast path), while transitions serialise
// on a mutex (the slow path, driven by situation events at sensor rates).
type Machine struct {
	states map[string]State
	rules  map[transKey]string
	events map[Event]bool // every event any rule reacts to

	mu        sync.Mutex
	listeners []Listener

	current atomic.Pointer[State]

	transitions atomic.Uint64 // committed transitions (event-driven + forced)
	ignored     atomic.Uint64 // events with no matching rule
	forced      atomic.Uint64 // ForceState transitions (break-glass, failsafe)
}

// Config assembles a Machine.
type Config struct {
	States      []State
	Initial     string
	Transitions []Transition
}

// New builds a machine, validating that states are unique, the initial
// state exists, and transitions are deterministic and reference declared
// states.
func New(cfg Config) (*Machine, error) {
	if len(cfg.States) == 0 {
		return nil, fmt.Errorf("ssm: no states")
	}
	m := &Machine{
		states: make(map[string]State, len(cfg.States)),
		rules:  make(map[transKey]string, len(cfg.Transitions)),
		events: make(map[Event]bool, len(cfg.Transitions)),
	}
	encodings := make(map[uint32]string)
	for _, s := range cfg.States {
		if _, dup := m.states[s.Name]; dup {
			return nil, fmt.Errorf("ssm: duplicate state %q", s.Name)
		}
		if prev, dup := encodings[s.Encoding]; dup {
			return nil, fmt.Errorf("ssm: states %q and %q share encoding %d", prev, s.Name, s.Encoding)
		}
		m.states[s.Name] = s
		encodings[s.Encoding] = s.Name
	}
	initial, ok := m.states[cfg.Initial]
	if !ok {
		return nil, fmt.Errorf("ssm: initial state %q not declared", cfg.Initial)
	}
	for _, t := range cfg.Transitions {
		if _, ok := m.states[t.From]; !ok {
			return nil, fmt.Errorf("ssm: transition from undeclared state %q", t.From)
		}
		if _, ok := m.states[t.To]; !ok {
			return nil, fmt.Errorf("ssm: transition to undeclared state %q", t.To)
		}
		key := transKey{t.From, t.Event}
		if to, dup := m.rules[key]; dup && to != t.To {
			return nil, fmt.Errorf("ssm: nondeterministic transition from %q on %q", t.From, t.Event)
		}
		m.rules[key] = t.To
		m.events[t.Event] = true
	}
	m.current.Store(&initial)
	return m, nil
}

// KnowsEvent reports whether any transition rule (from any state) reacts
// to ev — the membership test behind the pipeline's ErrUnknownEvent.
func (m *Machine) KnowsEvent(ev Event) bool { return m.events[ev] }

// Current returns the current situation state (lock-free).
func (m *Machine) Current() State { return *m.current.Load() }

// States lists the declared states sorted by encoding.
func (m *Machine) States() []State {
	out := make([]State, 0, len(m.states))
	for _, s := range m.states {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Encoding < out[j].Encoding })
	return out
}

// NumStates reports the number of declared states.
func (m *Machine) NumStates() int { return len(m.states) }

// Subscribe registers a transition listener.
func (m *Machine) Subscribe(l Listener) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, l)
}

// Deliver feeds one situation event to the machine — the body of
// Algorithm 1. If (event, current) matches a transition rule the state
// advances and listeners fire; otherwise the event is counted and
// ignored. It returns whether a transition happened and the before/after
// states.
func (m *Machine) Deliver(ev Event) (transitioned bool, from, to State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := *m.current.Load()
	target, ok := m.rules[transKey{cur.Name, ev}]
	if !ok {
		m.ignored.Add(1)
		return false, cur, cur
	}
	next := m.states[target]
	if next.Name != cur.Name {
		m.current.Store(&next)
	}
	m.transitions.Add(1)
	for _, l := range m.listeners {
		l(cur, next, ev)
	}
	return true, cur, next
}

// ForceState moves the machine to a state directly, bypassing transition
// rules (administrative reset through SACKfs). Listeners still fire.
func (m *Machine) ForceState(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	next, ok := m.states[name]
	if !ok {
		return fmt.Errorf("ssm: unknown state %q", name)
	}
	cur := *m.current.Load()
	m.current.Store(&next)
	m.transitions.Add(1)
	m.forced.Add(1)
	for _, l := range m.listeners {
		l(cur, next, Event("force_state"))
	}
	return nil
}

// CanHandle reports whether ev would cause a transition from the current
// state.
func (m *Machine) CanHandle(ev Event) bool {
	cur := m.Current()
	_, ok := m.rules[transKey{cur.Name, ev}]
	return ok
}

// Transitions enumerates every transition rule the machine holds, in
// deterministic (from, event) order — the enumeration surface the
// symbolic verifier walks to explore the SSM product space without
// reaching into the rule map.
func (m *Machine) Transitions() []Transition {
	out := make([]Transition, 0, len(m.rules))
	for key, to := range m.rules {
		out = append(out, Transition{From: key.from, Event: key.event, To: to})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Event < out[j].Event
	})
	return out
}

// Events returns the sorted set of events any rule reacts to.
func (m *Machine) Events() []Event {
	out := make([]Event, 0, len(m.events))
	for e := range m.events {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats reports (committed transitions, ignored events). Transitions
// include forced ones; Forced separates them so event accounting stays
// exact: delivered event hits == transitions - Forced().
func (m *Machine) Stats() (transitions, ignored uint64) {
	return m.transitions.Load(), m.ignored.Load()
}

// Forced reports how many transitions were ForceState calls rather than
// delivered events.
func (m *Machine) Forced() uint64 { return m.forced.Load() }
