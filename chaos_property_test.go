package sack_test

// chaos_property_test drives randomly generated fault plans through the
// whole resilience pipeline — faulty sensors, bounded SDS queue, faulty
// transmitter, SACKfs, pipeline watchdog, SSM — and checks that every
// event is accounted for: nothing is lost without a drop, hold, stall,
// or degradation being recorded somewhere. Failures replay
// deterministically from the seed.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	sack "repro"
	"repro/internal/faults"
	"repro/internal/sds"
	"repro/internal/trace"
	"repro/internal/vehicle"
)

const chaosPolicy = `
states {
  parked = 0
  driving = 1
  emergency = 2
  safe_stop = 3
}

initial parked

failsafe safe_stop

permissions {
  DEVICE_READ
  CONTROL_CAR_DOORS
}

state_per {
  parked:    DEVICE_READ, CONTROL_CAR_DOORS
  driving:   DEVICE_READ
  emergency: DEVICE_READ, CONTROL_CAR_DOORS
  safe_stop: DEVICE_READ, CONTROL_CAR_DOORS
}

per_rules {
  DEVICE_READ {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
  }
}

transitions {
  parked -> driving on driving_started
  driving -> parked on driving_stopped
  driving -> emergency on crash_detected
  emergency -> parked on all_clear
  safe_stop -> parked on all_clear
}
`

// randomPlan builds a bounded random fault plan: every rule has a
// finite window (After+For <= 55 ops), so sufficiently long runs always
// quiesce and the pipeline must recover.
func randomPlan(rng *rand.Rand, seed int64) *faults.Plan {
	targets := []string{
		faults.TargetTransmitter,
		faults.TargetTransmitterEvent,
		faults.SensorTarget(sds.SensorAccel),
		faults.SensorTarget(sds.SensorSpeed),
		faults.TargetCANBus,
	}
	kindsFor := map[string][]faults.Kind{
		faults.TargetTransmitter:             {faults.Stall, faults.Delay},
		faults.TargetTransmitterEvent:        {faults.Drop, faults.Duplicate, faults.Corrupt, faults.Reorder},
		faults.SensorTarget(sds.SensorAccel): {faults.Drop, faults.Delay, faults.Corrupt},
		faults.SensorTarget(sds.SensorSpeed): {faults.Drop, faults.Delay, faults.Corrupt},
		faults.TargetCANBus:                  {faults.Drop, faults.Duplicate, faults.Corrupt, faults.Reorder},
	}
	plan := &faults.Plan{Seed: seed}
	for i, n := 0, 2+rng.Intn(4); i < n; i++ {
		target := targets[rng.Intn(len(targets))]
		kinds := kindsFor[target]
		plan.Add(faults.Rule{
			Target: target,
			Kind:   kinds[rng.Intn(len(kinds))],
			After:  rng.Intn(40),
			For:    1 + rng.Intn(15),
			Mag:    1,
		})
	}
	return plan
}

func TestChaosRandomFaultPlans(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			plan := randomPlan(rng, seed)
			sys, err := sack.New(chaosPolicy, sack.WithFaultPlan(plan))
			if err != nil {
				t.Fatal(err)
			}
			root := sys.Kernel.Init()
			clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))

			// Assemble the SDS by hand so the test can reach the
			// concrete FaultyTransmitter for its committed ledger.
			tx, err := sds.NewKernelTransmitter(root)
			if err != nil {
				t.Fatal(err)
			}
			ft := sds.NewFaultyTransmitter(tx, sys.Faults).(*sds.FaultyTransmitter)
			raw := sds.VehicleSensors(sys.Vehicle.Dynamics)
			sensors := make([]sds.Sensor, len(raw))
			for i, sn := range raw {
				sensors[i] = sds.NewFaultySensor(sn, sys.Faults)
			}
			service := sds.NewService(clock,
				sensors,
				[]sds.Detector{
					sds.DrivingDetector(),
					sds.CrashDetector(8.0),
					sds.AllClearDetector(8.0),
				},
				ft,
				sds.WithHeartbeat(500*time.Millisecond),
				sds.WithDarkThreshold(3),
				sds.WithQueueCapacity(8),
				sds.WithJitterSeed(seed),
			)

			pipe := sys.Pipeline()
			valid := map[string]bool{"parked": true, "driving": true, "emergency": true, "safe_stop": true}
			var probes uint64 // direct pinned deliveries made by this test
			tr := trace.NewGenerator(seed).Generate(100)
			var prev time.Duration
			for step, p := range tr.Points {
				if p.T > prev {
					clock.Advance(p.T - prev)
					prev = p.T
				}
				trace.Apply(p, sys.Vehicle.Dynamics)
				// Errors are expected mid-chaos (stalls, queue overflow);
				// they must be the typed ones.
				if _, err := service.Poll(); err != nil &&
					!errors.Is(err, faults.ErrStall) && !errors.Is(err, sack.ErrQueueFull) {
					t.Fatalf("seed %d step %d: unexpected poll error: %v", seed, step, err)
				}
				pipe.Check(clock.Now())

				if state := sys.CurrentState().Name; !valid[state] {
					t.Fatalf("seed %d step %d: undeclared state %q", seed, step, state)
				}
				// While pinned, the direct path must reject with the
				// typed error and must not leak into the accounting.
				if pipe.Pinned() {
					probes++
					if err := sys.Events().DeliverEvent("all_clear"); !errors.Is(err, sack.ErrDegraded) {
						t.Fatalf("seed %d step %d: pinned delivery error = %v", seed, step, err)
					}
				}

				// The vehicle keeps working under CAN faults: probing a
				// door must never error in an allowed state, and frames
				// on the wire stay parseable.
				state := sys.CurrentState().Name
				fd, err := root.Open("/dev/vehicle/door0", sack.ORdonly, 0)
				if err != nil {
					t.Fatalf("seed %d step %d: read-open door: %v", seed, step, err)
				}
				_, ioctlErr := root.Ioctl(fd, vehicle.IoctlDoorStatus, 0)
				root.Close(fd)
				wantAllowed := state != "driving"
				if got := ioctlErr == nil; got != wantAllowed {
					t.Fatalf("seed %d step %d: state=%s ioctl allowed=%v want=%v (%v)",
						seed, step, state, got, wantAllowed, ioctlErr)
				}
			}

			// All fault windows are finite: keep polling until the plan
			// quiesces, the queue drains, and the pipeline recovers.
			recovered := false
			for i := 0; i < 300; i++ {
				clock.Advance(time.Second)
				_, _ = service.Poll()
				pipe.Check(clock.Now())
				depth, _, _, _ := service.QueueStats()
				if depth == 0 && len(service.DarkSensors()) == 0 && !pipe.Degraded() {
					recovered = true
					break
				}
			}
			if !recovered {
				depth, _, retries, drops := service.QueueStats()
				t.Fatalf("seed %d: pipeline never recovered: depth=%d retries=%d drops=%d degraded=%v reason=%q dark=%v",
					seed, depth, retries, drops, pipe.Degraded(), pipe.Reason(), service.DarkSensors())
			}

			// Ledger: every detected event is forwarded, dropped, or
			// still queued — duplicates add, holds subtract — and the
			// committed forwarded count matches what the kernel saw,
			// split between accepted (eventsIn) and rejected-degraded.
			st := ft.Stats()
			depth, _, _, qdrops := service.QueueStats()
			detected := uint64(len(service.History()))
			enqueued := detected - qdrops
			wantForwarded := enqueued - uint64(depth) - st.Dropped + st.Duplicated - st.Held
			if st.Forwarded != wantForwarded {
				t.Fatalf("seed %d: transmitter ledger: forwarded=%d want=%d (detected=%d qdrops=%d depth=%d dropped=%d dup=%d held=%d)",
					seed, st.Forwarded, wantForwarded, detected, qdrops, depth, st.Dropped, st.Duplicated, st.Held)
			}
			_, _, eventsIn, eventsHit := sys.SACK.Stats()
			ps := pipe.Stats()
			// RejectedDegraded counts both transmitter-path rejections
			// and this test's own direct pinned probes; only the former
			// passed through the transmitter.
			rejectedTx := ps.RejectedDegraded - probes
			if st.Forwarded != eventsIn+rejectedTx {
				t.Fatalf("seed %d: kernel ledger: forwarded=%d eventsIn=%d rejectedTx=%d (probes=%d)",
					seed, st.Forwarded, eventsIn, rejectedTx, probes)
			}
			transitions, ignored := sys.SACK.Machine().Stats()
			forced := sys.SACK.Machine().Forced()
			if eventsHit != transitions-forced || eventsIn != (transitions-forced)+ignored {
				t.Fatalf("seed %d: accounting: in=%d hit=%d trans=%d forced=%d ignored=%d",
					seed, eventsIn, eventsHit, transitions, forced, ignored)
			}
			// No transition lost silently: the gap between detected and
			// kernel-seen events is exactly the sum of recorded causes
			// (queue drops, queued, transmitter drops, holds, degraded
			// rejections), minus injected duplicates. Corruption is not
			// a cause: a corrupted event still reaches the kernel and
			// counts as ignored-unknown.
			gap := int64(detected) - int64(eventsIn)
			explained := int64(qdrops+uint64(depth)+st.Dropped+st.Held+rejectedTx) - int64(st.Duplicated)
			if gap != explained {
				t.Fatalf("seed %d: %d events unaccounted, %d explained (qdrops=%d depth=%d dropped=%d held=%d rejectedTx=%d dup=%d)",
					seed, gap, explained, qdrops, depth, st.Dropped, st.Held, rejectedTx, st.Duplicated)
			}
		})
	}
}

// TestChaosCachedVsUncachedDecisions boots two identical systems under
// the same fault plan — one with the AVC, one cache-ablated — and
// checks that every access decision and situation state agrees at every
// step. Faults must never desynchronize the cache from ground truth.
func TestChaosCachedVsUncachedDecisions(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			plan := randomPlan(rng, seed)

			type half struct {
				sys     *sack.System
				root    *sack.Task
				clock   *sds.VirtualClock
				service *sack.SDS
			}
			mk := func(opts ...sack.Option) *half {
				opts = append(opts, sack.WithFaultPlan(plan))
				sys, err := sack.New(chaosPolicy, opts...)
				if err != nil {
					t.Fatal(err)
				}
				root := sys.Kernel.Init()
				clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
				service, err := sys.NewSDSWith(root, clock,
					[]sds.Detector{
						sds.DrivingDetector(),
						sds.CrashDetector(8.0),
						sds.AllClearDetector(8.0),
					},
					sds.WithHeartbeat(500*time.Millisecond),
					sds.WithDarkThreshold(3),
					sds.WithJitterSeed(seed),
				)
				if err != nil {
					t.Fatal(err)
				}
				return &half{sys: sys, root: root, clock: clock, service: service}
			}
			cached, ablated := mk(), mk(sack.WithoutAVC())

			tr := trace.NewGenerator(seed).Generate(80)
			var prev time.Duration
			for step, p := range tr.Points {
				for _, h := range []*half{cached, ablated} {
					if p.T > prev {
						h.clock.Advance(p.T - prev)
					}
					trace.Apply(p, h.sys.Vehicle.Dynamics)
					_, _ = h.service.Poll()
					h.sys.Pipeline().Check(h.clock.Now())
				}
				if p.T > prev {
					prev = p.T
				}

				a, b := cached.sys.CurrentState().Name, ablated.sys.CurrentState().Name
				if a != b {
					t.Fatalf("seed %d step %d: states diverge: cached=%s ablated=%s", seed, step, a, b)
				}
				probe := func(h *half) error {
					fd, err := h.root.Open("/dev/vehicle/door0", sack.ORdonly, 0)
					if err != nil {
						return err
					}
					_, err = h.root.Ioctl(fd, vehicle.IoctlDoorStatus, 0)
					h.root.Close(fd)
					return err
				}
				ea, eb := probe(cached), probe(ablated)
				if (ea == nil) != (eb == nil) {
					t.Fatalf("seed %d step %d state %s: decisions diverge: cached=%v ablated=%v",
						seed, step, a, ea, eb)
				}
			}
		})
	}
}
