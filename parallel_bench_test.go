package sack_test

// parallel_bench_test.go measures decision throughput as goroutine
// count grows — the multi-core scalability experiment behind the
// lock-free read side. Three configurations: the capability-only
// kernel (no SACK), SACK on a policy-covered path (steady-state AVC
// hits), and SACK on an uncovered path (coverage-map passthrough).
//
// Run: go test -bench=ParallelDecision -benchtime=1s .
// Scaling is bounded by GOMAXPROCS: on a single-CPU host every
// goroutine count time-slices one core, so the interesting number there
// is that throughput stays flat instead of collapsing under contention.
// The sackbench binary prints the same sweep as a table (-scale).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/sys"
)

var parallelGoroutines = []int{1, 2, 4, 8, 16, 32}

// BenchmarkParallelDecision drives InodePermission through the full LSM
// stack from g concurrent goroutines, each with its own cred.
func BenchmarkParallelDecision(b *testing.B) {
	configs := []struct {
		name string
		boot func() (*bench.Testbed, error)
		path string
	}{
		{"nosack", bench.BootCapabilityOnly, "/dev/vehicle/door0"},
		{"sack-covered", func() (*bench.Testbed, error) { return bench.BootIndependentSACK(bench.DefaultSACKPolicy) }, "/dev/vehicle/door0"},
		{"sack-uncovered", func() (*bench.Testbed, error) { return bench.BootIndependentSACK(bench.DefaultSACKPolicy) }, "/etc/hostname"},
	}
	for _, cfg := range configs {
		tb, err := cfg.boot()
		if err != nil {
			b.Fatal(err)
		}
		for _, g := range parallelGoroutines {
			b.Run(fmt.Sprintf("%s/goroutines=%d", cfg.name, g), func(b *testing.B) {
				creds := make([]*sys.Cred, g)
				for i := range creds {
					creds[i] = sys.NewCred(1000, 1000)
					creds[i].SetBlob("sack", "/usr/bin/bench-task")
					// Warm the AVC: the sweep measures the steady-state hit path.
					if err := tb.Kernel.LSM.InodePermission(creds[i], cfg.path, nil, sys.MayRead); err != nil {
						b.Fatalf("warmup check: %v", err)
					}
				}
				perG := b.N / g
				if perG == 0 {
					perG = 1
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for i := 0; i < g; i++ {
					wg.Add(1)
					go func(cred *sys.Cred) {
						defer wg.Done()
						for n := 0; n < perG; n++ {
							_ = tb.Kernel.LSM.InodePermission(cred, cfg.path, nil, sys.MayRead)
						}
					}(creds[i])
				}
				wg.Wait()
				b.StopTimer()
				ops := float64(g * perG)
				b.ReportMetric(ops/b.Elapsed().Seconds(), "ops/s")
			})
		}
	}
}
