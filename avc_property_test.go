package sack_test

// avc_property_test checks that the access vector cache is semantically
// invisible: over random drive traces, a cached system and a cache-ablated
// system must return identical verdicts for every probe, and both must
// agree with a fresh evaluation of the active rule set. Failures replay
// deterministically from the seed.

import (
	"fmt"
	"testing"
	"time"

	sack "repro"
	"repro/internal/sds"
	"repro/internal/sys"
	"repro/internal/trace"
)

// avcProbe is one (path, mask) decision point. The set mixes covered
// paths whose verdict flips with the situation state, covered paths that
// are always denied, and uncovered paths that pass through.
var avcProbes = []struct {
	path string
	mask sys.Access
}{
	{"/dev/vehicle/door0", sys.MayRead},
	{"/dev/vehicle/door0", sys.MayWrite},
	{"/dev/vehicle/door0", sys.MayIoctl},
	{"/dev/vehicle/door3", sys.MayWrite},
	{"/dev/vehicle/window1", sys.MayRead},
	{"/dev/vehicle/window1", sys.MayWrite},
	{"/tmp/uncovered.dat", sys.MayRead},
	{"/etc/passwd", sys.MayWrite},
}

func TestAVCPropertyCachedEqualsUncached(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			boot := func(opts ...sack.Option) (*sack.System, *sds.Service, *sds.VirtualClock) {
				t.Helper()
				s, err := sack.New(fuzzPolicy, opts...)
				if err != nil {
					t.Fatal(err)
				}
				clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
				svc, err := s.NewSDS(s.Kernel.Init(), clock,
					sds.DrivingDetector(),
					sds.CrashDetector(8.0),
					sds.AllClearDetector(8.0),
				)
				if err != nil {
					t.Fatal(err)
				}
				return s, svc, clock
			}
			cached, cachedSvc, cachedClock := boot()
			plain, plainSvc, plainClock := boot(sack.WithoutAVC())

			cred := sys.NewCred(0, 0)
			tr := trace.NewGenerator(seed).Generate(150)
			var prev time.Duration
			for step, p := range tr.Points {
				if p.T > prev {
					cachedClock.Advance(p.T - prev)
					plainClock.Advance(p.T - prev)
					prev = p.T
				}
				trace.Apply(p, cached.Vehicle.Dynamics)
				trace.Apply(p, plain.Vehicle.Dynamics)
				if _, err := cachedSvc.Poll(); err != nil {
					t.Fatalf("step %d: cached poll: %v", step, err)
				}
				if _, err := plainSvc.Poll(); err != nil {
					t.Fatalf("step %d: plain poll: %v", step, err)
				}
				if a, b := cached.CurrentState().Name, plain.CurrentState().Name; a != b {
					t.Fatalf("step %d: states diverged: cached=%s plain=%s", step, a, b)
				}

				for _, pr := range avcProbes {
					// Probe each system twice so the cached one answers
					// from the cache on the second call whenever possible.
					for rep := 0; rep < 2; rep++ {
						gotCached := cached.SACK.InodePermission(cred, pr.path, nil, pr.mask)
						gotPlain := plain.SACK.InodePermission(cred, pr.path, nil, pr.mask)
						if (gotCached == nil) != (gotPlain == nil) {
							t.Fatalf("step %d probe %s mask=%v rep %d: cached=%v plain=%v",
								step, pr.path, pr.mask, rep, gotCached, gotPlain)
						}
						// Cross-check against a fresh rule-set evaluation.
						want := true
						if cached.SACK.Policy().Coverage.Covers(pr.path) {
							want, _ = cached.SACK.ActiveRules().Decide("", pr.path, pr.mask)
						}
						if got := gotCached == nil; got != want {
							t.Fatalf("step %d probe %s mask=%v rep %d: verdict %v, fresh Decide says %v",
								step, pr.path, pr.mask, rep, got, want)
						}
					}
				}
			}

			if st := cached.SACK.AVCStats(); st.Hits == 0 {
				t.Errorf("cached system never hit its AVC: %+v", st)
			}
			if st := plain.SACK.AVCStats(); st.Size != 0 {
				t.Errorf("WithoutAVC system has a live cache: %+v", st)
			}
		})
	}
}
