package sack_test

// The resilience layer must be free on the no-fault happy path: event
// delivery and quiet SDS polls run without per-operation heap
// allocations. Guarded by tests (exact) and benchmarks (trend).

import (
	"testing"
	"time"

	sack "repro"
	"repro/internal/sds"
)

func TestEventDeliveryHappyPathAllocFree(t *testing.T) {
	sys, err := sack.New(basicPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sink := sys.Events()
	// "all_clear" is a known event that does not transition out of the
	// initial state: the pure delivery path, no rule-set swap.
	if err := sink.DeliverEvent("all_clear"); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := sink.DeliverEvent("all_clear"); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("DeliverEvent allocates %.1f per event on the happy path", allocs)
	}
}

func TestQuietPollAllocFree(t *testing.T) {
	sys, err := sack.New(basicPolicy)
	if err != nil {
		t.Fatal(err)
	}
	root := sys.Kernel.Init()
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	service, err := sys.NewSDS(root, clock, sds.CrashDetector(8.0))
	if err != nil {
		t.Fatal(err)
	}
	// Steady dynamics: no events detected, nothing to flush.
	if _, err := service.Poll(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		clock.Advance(100 * time.Millisecond)
		if _, err := service.Poll(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("quiet Poll allocates %.1f per poll", allocs)
	}
}

func BenchmarkEventSinkDeliver(b *testing.B) {
	sys, err := sack.New(basicPolicy)
	if err != nil {
		b.Fatal(err)
	}
	sink := sys.Events()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sink.DeliverEvent("all_clear"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSDSQuietPoll(b *testing.B) {
	sys, err := sack.New(basicPolicy)
	if err != nil {
		b.Fatal(err)
	}
	root := sys.Kernel.Init()
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	service, err := sys.NewSDS(root, clock, sds.CrashDetector(8.0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(100 * time.Millisecond)
		if _, err := service.Poll(); err != nil {
			b.Fatal(err)
		}
	}
}
