package sack_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	sack "repro"
	"repro/internal/faults"
	"repro/internal/sds"
)

const failsafeAPIPolicy = `
states {
  normal = 0
  emergency = 1
  lockdown = 2
}
initial normal
failsafe lockdown
permissions {
  DEVICE_READ
  CONTROL_CAR_DOORS
}
state_per {
  normal:    DEVICE_READ
  emergency: DEVICE_READ, CONTROL_CAR_DOORS
  lockdown:  DEVICE_READ
}
per_rules {
  DEVICE_READ {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
  }
}
transitions {
  normal -> emergency on crash_detected
  emergency -> normal on all_clear
  lockdown -> normal on all_clear
}
`

func TestEventSinkInterfaceUnifiesEntryPaths(t *testing.T) {
	sys, err := sack.New(basicPolicy)
	if err != nil {
		t.Fatal(err)
	}
	root := sys.Kernel.Init()
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	service, err := sys.NewSDS(root, clock)
	if err != nil {
		t.Fatal(err)
	}

	// Both the direct kernel path and the SDS queue satisfy EventSink.
	sinks := []sack.EventSink{sys.Events(), service}
	for i, sink := range sinks {
		if err := sink.DeliverEvent("crash_detected"); err != nil {
			t.Fatalf("sink %d: %v", i, err)
		}
	}
	if got := sys.CurrentState(); got.Name != "emergency" {
		t.Fatalf("state = %q", got.Name)
	}

	// Unknown events surface a typed error on the direct path.
	if err := sys.Events().DeliverEvent("no_such_event"); !errors.Is(err, sack.ErrUnknownEvent) {
		t.Fatalf("unknown event error = %v", err)
	}
}

func TestWithFailsafeOverridesAndPins(t *testing.T) {
	sys, err := sack.New(failsafeAPIPolicy,
		sack.WithFailsafe("emergency"),
		sack.WithHeartbeatWindow(2*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	pipe := sys.Pipeline()
	if got := pipe.Failsafe(); got != "emergency" {
		t.Fatalf("failsafe = %q (override lost)", got)
	}
	if got := pipe.Window(); got != 2*time.Second {
		t.Fatalf("window = %v", got)
	}

	// Lapse the heartbeat: observe one beat, then check far in the future.
	base := time.Unix(1_700_000_000, 0)
	pipe.Observe(sack.Heartbeat{Seq: 1, At: base})
	pipe.Check(base.Add(5 * time.Second))
	if !pipe.Degraded() {
		t.Fatal("not degraded after lapse")
	}
	if got := sys.CurrentState(); got.Name != "emergency" {
		t.Fatalf("failsafe state = %q", got.Name)
	}
	if err := sys.Events().DeliverEvent("all_clear"); !errors.Is(err, sack.ErrDegraded) {
		t.Fatalf("pinned delivery error = %v", err)
	}

	// WithFailsafe naming an undeclared state is a boot error.
	if _, err := sack.New(failsafeAPIPolicy, sack.WithFailsafe("bunker")); err == nil {
		t.Fatal("undeclared failsafe accepted")
	}
}

func TestWithFaultPlanWiresBusAndSDS(t *testing.T) {
	// Drop every CAN frame and every transmitter event line: commands
	// never reach actuators and detections never reach the kernel.
	plan := &faults.Plan{Seed: 7}
	plan.Add(sack.FaultRule{Target: faults.TargetCANBus, Kind: faults.Drop})
	plan.Add(sack.FaultRule{Target: faults.TargetTransmitterEvent, Kind: faults.Drop})

	sys, err := sack.New(basicPolicy, sack.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Faults == nil {
		t.Fatal("System.Faults not armed")
	}

	sys.Vehicle.Bus.Send(sack.CANFrame{ID: 0x100, Len: 1})
	if got := len(sys.Vehicle.Bus.Log()); got != 0 {
		t.Fatalf("dropped frame hit the wire: %d logged", got)
	}

	root := sys.Kernel.Init()
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	service, err := sys.NewSDSWith(root, clock, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := service.DeliverEvent("crash_detected"); err != nil {
		t.Fatal(err)
	}
	if err := service.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sys.CurrentState(); got.Name != "normal" {
		t.Fatalf("dropped event transitioned the SSM: state = %q", got.Name)
	}
}

func TestParseFaultSpecRoundTrip(t *testing.T) {
	plan, err := sack.ParseFaultSpec("stall:transmitter:after=2", 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Rules) != 1 || plan.Seed != 42 {
		t.Fatalf("plan = %+v", plan)
	}
	if _, err := sack.ParseFaultSpec("explode:transmitter", 1); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestPipelineFileReadableThroughPublicAPI(t *testing.T) {
	sys, err := sack.New(failsafeAPIPolicy)
	if err != nil {
		t.Fatal(err)
	}
	root := sys.Kernel.Init()
	data, err := root.ReadFileAll(sack.PipelineFile)
	if err != nil {
		t.Fatal(err)
	}
	content := string(data)
	for _, key := range []string{"degraded:", "failsafe_state: lockdown", "heartbeat_armed:"} {
		if !strings.Contains(content, key) {
			t.Fatalf("pipeline file missing %q:\n%s", key, content)
		}
	}
}
