package sack_test

// reload_stress_test interleaves random policy reloads with random
// pipeline faults (dark sensors, heartbeat lapses, full fault plans)
// and checks that the reload transaction keeps every invariant the
// resilience layer promises: the SSM never leaves the states of the
// *currently installed* policy, pinning always equals "degraded with a
// declared failsafe", recovery restores the logical pre-degradation
// state (remapped, never the failsafe itself), event accounting stays
// ledger-exact across machine swaps, and the reload generation is
// strictly monotonic. Failures replay deterministically from the seed.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	sack "repro"
	"repro/internal/sds"
	"repro/internal/trace"
)

// The reload pool: four mutually reloadable revisions of the chaos
// policy. Rule bodies are shared so access decisions depend only on the
// state names, which is what the reload machinery manipulates.
const reloadPolicyBody = `
permissions {
  DEVICE_READ
  CONTROL_CAR_DOORS
}

per_rules {
  DEVICE_READ {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
  }
}
`

const reloadPolicyFull = `
states { parked = 0 driving = 1 emergency = 2 safe_stop = 3 }
initial parked
failsafe safe_stop
state_per {
  parked:    DEVICE_READ, CONTROL_CAR_DOORS
  driving:   DEVICE_READ
  emergency: DEVICE_READ, CONTROL_CAR_DOORS
  safe_stop: DEVICE_READ, CONTROL_CAR_DOORS
}
transitions {
  parked -> driving on driving_started
  driving -> parked on driving_stopped
  driving -> emergency on crash_detected
  emergency -> parked on all_clear
  safe_stop -> parked on all_clear
}
` + reloadPolicyBody

const reloadPolicyNoFailsafe = `
states { parked = 0 driving = 1 emergency = 2 safe_stop = 3 }
initial parked
state_per {
  parked:    DEVICE_READ, CONTROL_CAR_DOORS
  driving:   DEVICE_READ
  emergency: DEVICE_READ, CONTROL_CAR_DOORS
  safe_stop: DEVICE_READ, CONTROL_CAR_DOORS
}
transitions {
  parked -> driving on driving_started
  driving -> parked on driving_stopped
  driving -> emergency on crash_detected
  emergency -> parked on all_clear
  safe_stop -> parked on all_clear
}
` + reloadPolicyBody

const reloadPolicyDropEmergency = `
states { parked = 0 driving = 1 safe_stop = 3 }
initial parked
failsafe safe_stop
state_per {
  parked:    DEVICE_READ, CONTROL_CAR_DOORS
  driving:   DEVICE_READ
  safe_stop: DEVICE_READ, CONTROL_CAR_DOORS
}
transitions {
  parked -> driving on driving_started
  driving -> parked on driving_stopped
  safe_stop -> parked on all_clear
}
` + reloadPolicyBody

const reloadPolicyAltFailsafe = `
states { parked = 0 driving = 1 emergency = 2 safe_stop = 3 }
initial parked
failsafe parked
state_per {
  parked:    DEVICE_READ, CONTROL_CAR_DOORS
  driving:   DEVICE_READ
  emergency: DEVICE_READ, CONTROL_CAR_DOORS
  safe_stop: DEVICE_READ, CONTROL_CAR_DOORS
}
transitions {
  parked -> driving on driving_started
  driving -> parked on driving_stopped
  driving -> emergency on crash_detected
  emergency -> parked on all_clear
  safe_stop -> parked on all_clear
}
` + reloadPolicyBody

// reloadVariant is one pool entry plus the metadata the shadow model
// needs.
type reloadVariant struct {
	src      string
	initial  string
	failsafe string
	states   map[string]bool
	rules    map[string]string // "from\x00event" -> to
	events   map[string]bool
}

func loadVariant(t *testing.T, src string) reloadVariant {
	t.Helper()
	c, _, err := sack.ParsePolicy(src)
	if err != nil {
		t.Fatalf("variant: %v", err)
	}
	v := reloadVariant{
		src: src, initial: c.Initial, failsafe: c.Failsafe,
		states: map[string]bool{}, rules: map[string]string{}, events: map[string]bool{},
	}
	for _, st := range c.States {
		v.states[st.Name] = true
	}
	for _, tr := range c.Transitions {
		v.rules[tr.From+"\x00"+tr.Event] = tr.To
		v.events[tr.Event] = true
	}
	return v
}

// shadowModel is the reference implementation of the pipeline/reload
// semantics, advanced in lockstep with the real system.
type shadowModel struct {
	v        reloadVariant
	current  string // where the machine is
	prev     string // pre-degradation state ("" while healthy)
	degraded bool
	pinned   bool
	armed    bool
	lastBeat time.Time
	window   time.Duration
}

func (m *shadowModel) remap(name string) string {
	if m.v.states[name] {
		return name
	}
	return m.v.initial
}

func (m *shadowModel) degrade() {
	if m.degraded {
		return
	}
	m.degraded = true
	m.prev = m.current
	if m.v.failsafe != "" {
		m.pinned = true
		m.current = m.v.failsafe
	}
}

func (m *shadowModel) recover() {
	if !m.degraded {
		return
	}
	m.degraded, m.pinned = false, false
	if m.prev != "" {
		m.current = m.prev
	}
	m.prev = ""
}

func (m *shadowModel) observe(at time.Time, dark bool) {
	m.armed = true
	m.lastBeat = at
	if dark {
		m.degrade()
	} else {
		m.recover()
	}
}

func (m *shadowModel) check(now time.Time) {
	if m.armed && !m.degraded && now.Sub(m.lastBeat) > m.window {
		m.degrade()
	}
}

// deliver returns whether the event was accepted into the accounting.
func (m *shadowModel) deliver(ev string) bool {
	if m.pinned {
		return false
	}
	if to, ok := m.v.rules[m.current+"\x00"+ev]; ok {
		m.current = to
	}
	return true
}

// reload mirrors the ReplacePolicy commit protocol.
func (m *shadowModel) reload(v reloadVariant) {
	m.v = v
	prevAfter := ""
	if m.degraded && m.prev != "" {
		prevAfter = m.remap(m.prev)
	}
	var logical string
	if m.pinned {
		logical = prevAfter
		if logical == "" {
			logical = v.initial
		}
	} else {
		logical = m.remap(m.current)
	}
	pinnedAfter := m.degraded && v.failsafe != ""
	landing := logical
	if pinnedAfter {
		landing = v.failsafe
		if prevAfter == "" {
			prevAfter = logical
		}
	}
	if !m.degraded {
		prevAfter = ""
	}
	m.current, m.prev, m.pinned = landing, prevAfter, pinnedAfter
}

// TestReloadChaosInterleaved runs the shadow model against the real
// system under randomized interleavings of heartbeats (clean and
// dark), watchdog lapses, event deliveries, and reloads across the
// variant pool — asserting exact agreement at every step.
func TestReloadChaosInterleaved(t *testing.T) {
	eventPool := []string{"driving_started", "driving_stopped", "crash_detected", "all_clear", "bogus_event"}
	for seed := int64(0); seed < 16; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			variants := []reloadVariant{
				loadVariant(t, reloadPolicyFull),
				loadVariant(t, reloadPolicyNoFailsafe),
				loadVariant(t, reloadPolicyDropEmergency),
				loadVariant(t, reloadPolicyAltFailsafe),
			}
			sys, err := sack.New(reloadPolicyFull, sack.WithoutVehicle())
			if err != nil {
				t.Fatal(err)
			}
			pipe := sys.Pipeline()
			model := &shadowModel{v: variants[0], current: "parked", window: pipe.Window()}

			now := time.Unix(1_700_000_000, 0)
			var beatSeq uint64
			var wantEventsIn uint64
			var wantGen uint64 = 1
			// Machine counters reset at each reload (a fresh SSM swaps
			// in); accumulate them so the ledger spans the whole run.
			var accTrans, accForced, accIgnored uint64
			snapshotMachine := func() {
				tr, ig := sys.SACK.Machine().Stats()
				accTrans += tr
				accForced += sys.SACK.Machine().Forced()
				accIgnored += ig
			}

			for step := 0; step < 400; step++ {
				switch op := rng.Intn(10); {
				case op < 3: // heartbeat, sometimes reporting dark sensors
					now = now.Add(time.Duration(rng.Intn(1500)) * time.Millisecond)
					dark := rng.Intn(4) == 0
					beatSeq++
					h := sack.Heartbeat{Seq: beatSeq, At: now, Cap: 8}
					if dark {
						h.Dark = []string{"speed"}
					}
					pipe.Observe(h)
					model.observe(now, dark)
				case op < 5: // watchdog tick, sometimes past the window
					now = now.Add(time.Duration(rng.Intn(4500)) * time.Millisecond)
					pipe.Check(now)
					model.check(now)
				case op < 9: // event delivery
					ev := eventPool[rng.Intn(len(eventPool))]
					err := sys.Events().DeliverEvent(sack.Event(ev))
					switch {
					case model.pinned:
						if !errors.Is(err, sack.ErrDegraded) {
							t.Fatalf("seed %d step %d: pinned delivery of %q: %v", seed, step, ev, err)
						}
					case !model.v.events[ev]:
						if !errors.Is(err, sack.ErrUnknownEvent) {
							t.Fatalf("seed %d step %d: unknown event %q: %v", seed, step, ev, err)
						}
					default:
						if err != nil {
							t.Fatalf("seed %d step %d: delivery of %q: %v", seed, step, ev, err)
						}
					}
					if model.deliver(ev) {
						wantEventsIn++
					}
				default: // reload
					v := variants[rng.Intn(len(variants))]
					snapshotMachine()
					report, err := sys.Reload(v.src)
					if err != nil {
						t.Fatalf("seed %d step %d: reload: %v", seed, step, err)
					}
					model.reload(v)
					wantGen++
					if st := sys.SACK.ReloadStatus(); st.Generation != wantGen {
						t.Fatalf("seed %d step %d: generation = %d, want %d", seed, step, st.Generation, wantGen)
					} else if st.Summary != report.Summary() {
						t.Fatalf("seed %d step %d: status summary %q != applied %q", seed, step, st.Summary, report.Summary())
					}
				}

				// Lockstep invariants after every operation.
				if got := sys.CurrentState().Name; got != model.current {
					t.Fatalf("seed %d step %d: state = %s, model = %s (degraded=%v pinned=%v)",
						seed, step, got, model.current, model.degraded, model.pinned)
				}
				if !model.v.states[sys.CurrentState().Name] {
					t.Fatalf("seed %d step %d: state %q not declared by installed policy", seed, step, sys.CurrentState().Name)
				}
				if pipe.Degraded() != model.degraded || pipe.Pinned() != model.pinned {
					t.Fatalf("seed %d step %d: degraded=%v/%v pinned=%v/%v",
						seed, step, pipe.Degraded(), model.degraded, pipe.Pinned(), model.pinned)
				}
				if pipe.Pinned() && (!model.degraded || pipe.Failsafe() == "") {
					t.Fatalf("seed %d step %d: pinned without degraded failsafe", seed, step)
				}
			}

			// Drive recovery and confirm nothing is wedged: the state
			// after recovery exists in the *installed* policy and can
			// still leave the failsafe through ordinary transitions.
			beatSeq++
			now = now.Add(time.Second)
			pipe.Observe(sack.Heartbeat{Seq: beatSeq, At: now, Cap: 8})
			model.observe(now, false)
			if pipe.Degraded() || pipe.Pinned() {
				t.Fatalf("seed %d: clean heartbeat did not recover", seed)
			}
			if got := sys.CurrentState().Name; got != model.current || !model.v.states[got] {
				t.Fatalf("seed %d: recovered state %q, model %q", seed, got, model.current)
			}
			for _, ev := range []string{"all_clear", "driving_stopped", "all_clear"} {
				_ = sys.Events().DeliverEvent(sack.Event(ev))
				if model.deliver(ev) {
					wantEventsIn++
				}
			}
			if got := sys.CurrentState().Name; got != "parked" || model.current != "parked" {
				t.Fatalf("seed %d: post-recovery drain: state=%s model=%s (wedged?)", seed, got, model.current)
			}

			// Ledger across all machine generations: every accepted
			// event is a transition or an ignore; pinned rejections
			// never leak in.
			snapshotMachine()
			_, _, eventsIn, eventsHit := sys.SACK.Stats()
			if eventsIn != wantEventsIn {
				t.Fatalf("seed %d: eventsIn = %d, want %d", seed, eventsIn, wantEventsIn)
			}
			if eventsIn != (accTrans-accForced)+accIgnored {
				t.Fatalf("seed %d: ledger: in=%d trans=%d forced=%d ignored=%d",
					seed, eventsIn, accTrans, accForced, accIgnored)
			}
			if eventsHit != accTrans-accForced {
				t.Fatalf("seed %d: hits=%d trans-forced=%d", seed, eventsHit, accTrans-accForced)
			}

			// The reload file reports the final generation.
			task := sys.Kernel.Init()
			data, err := task.ReadFileAll(sack.ReloadFile)
			if err != nil {
				t.Fatalf("seed %d: read %s: %v", seed, sack.ReloadFile, err)
			}
			if want := fmt.Sprintf("generation: %d", wantGen); !strings.Contains(string(data), want) {
				t.Fatalf("seed %d: reload file missing %q:\n%s", seed, want, data)
			}
		})
	}
}

// TestReloadChaosWithFaultPlans runs the full SDS-driven chaos harness
// (random fault plans over sensors, transmitter, CAN bus) and injects
// random reloads mid-flight, then checks the kernel-side ledger still
// reconciles exactly and the pipeline recovers into a state the final
// policy declares.
func TestReloadChaosWithFaultPlans(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			plan := randomPlan(rng, seed)
			variants := []string{
				reloadPolicyFull, reloadPolicyNoFailsafe,
				reloadPolicyDropEmergency, reloadPolicyAltFailsafe,
			}
			sys, err := sack.New(reloadPolicyFull, sack.WithFaultPlan(plan))
			if err != nil {
				t.Fatal(err)
			}
			root := sys.Kernel.Init()
			clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
			service, err := sys.NewSDSWith(root, clock,
				[]sds.Detector{
					sds.DrivingDetector(),
					sds.CrashDetector(8.0),
					sds.AllClearDetector(8.0),
				},
				sds.WithHeartbeat(500*time.Millisecond),
				sds.WithDarkThreshold(3),
				sds.WithJitterSeed(seed),
			)
			if err != nil {
				t.Fatal(err)
			}
			pipe := sys.Pipeline()

			var accTrans, accForced, accIgnored uint64
			snapshotMachine := func() {
				tr, ig := sys.SACK.Machine().Stats()
				accTrans += tr
				accForced += sys.SACK.Machine().Forced()
				accIgnored += ig
			}
			declared := func() map[string]bool {
				out := map[string]bool{}
				for _, st := range sys.SACK.Machine().States() {
					out[st.Name] = true
				}
				return out
			}

			lastGen := sys.SACK.ReloadStatus().Generation
			tr := trace.NewGenerator(seed).Generate(100)
			var prev time.Duration
			for step, p := range tr.Points {
				if p.T > prev {
					clock.Advance(p.T - prev)
					prev = p.T
				}
				trace.Apply(p, sys.Vehicle.Dynamics)
				_, _ = service.Poll()
				pipe.Check(clock.Now())

				if rng.Intn(12) == 0 {
					snapshotMachine()
					if _, err := sys.Reload(variants[rng.Intn(len(variants))]); err != nil {
						t.Fatalf("seed %d step %d: reload: %v", seed, step, err)
					}
					gen := sys.SACK.ReloadStatus().Generation
					if gen != lastGen+1 {
						t.Fatalf("seed %d step %d: generation %d after %d", seed, step, gen, lastGen)
					}
					lastGen = gen
				}

				state := sys.CurrentState().Name
				if !declared()[state] {
					t.Fatalf("seed %d step %d: state %q not in installed policy", seed, step, state)
				}
				if pipe.Pinned() != (pipe.Degraded() && pipe.Failsafe() != "") {
					t.Fatalf("seed %d step %d: pin invariant broken: pinned=%v degraded=%v failsafe=%q",
						seed, step, pipe.Pinned(), pipe.Degraded(), pipe.Failsafe())
				}
				if pipe.Pinned() && state != pipe.Failsafe() {
					t.Fatalf("seed %d step %d: pinned in %q, failsafe %q", seed, step, state, pipe.Failsafe())
				}
			}

			// Quiesce: all fault windows are finite, so the pipeline must
			// recover into a state the final policy declares.
			recovered := false
			for i := 0; i < 300; i++ {
				clock.Advance(time.Second)
				_, _ = service.Poll()
				pipe.Check(clock.Now())
				depth, _, _, _ := service.QueueStats()
				if depth == 0 && len(service.DarkSensors()) == 0 && !pipe.Degraded() {
					recovered = true
					break
				}
			}
			if !recovered {
				t.Fatalf("seed %d: pipeline never recovered: reason=%q", seed, pipe.Reason())
			}
			if state := sys.CurrentState().Name; !declared()[state] {
				t.Fatalf("seed %d: recovered into undeclared state %q", seed, state)
			}

			// Kernel-side ledger across machine swaps: accepted events
			// are exactly transitions-plus-ignores; rejections while
			// pinned were counted, not delivered.
			snapshotMachine()
			_, _, eventsIn, eventsHit := sys.SACK.Stats()
			if eventsIn != (accTrans-accForced)+accIgnored {
				t.Fatalf("seed %d: ledger: in=%d trans=%d forced=%d ignored=%d",
					seed, eventsIn, accTrans, accForced, accIgnored)
			}
			if eventsHit != accTrans-accForced {
				t.Fatalf("seed %d: hits=%d trans-forced=%d", seed, eventsHit, accTrans-accForced)
			}
		})
	}
}

// TestReloadConcurrentWithDeliveryAndWatchdog hammers reloads, event
// deliveries, heartbeats, and watchdog ticks from concurrent
// goroutines. Run under -race (make reload-stress) it checks the
// transaction's lock ordering and that the system lands in a coherent,
// declared state.
func TestReloadConcurrentWithDeliveryAndWatchdog(t *testing.T) {
	sys, err := sack.New(reloadPolicyFull, sack.WithoutVehicle())
	if err != nil {
		t.Fatal(err)
	}
	variants := []string{
		reloadPolicyFull, reloadPolicyNoFailsafe,
		reloadPolicyDropEmergency, reloadPolicyAltFailsafe,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if _, err := sys.Reload(variants[i%len(variants)]); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
		}
	}()
	events := []sack.Event{"driving_started", "driving_stopped", "crash_detected", "all_clear"}
	base := time.Unix(1_700_000_000, 0)
	for i := 0; ; i++ {
		select {
		case <-done:
			// One more reload after the storm settles, then verify
			// coherence.
			if _, err := sys.Reload(reloadPolicyFull); err != nil {
				t.Fatal(err)
			}
			now := base.Add(time.Duration(i+1) * time.Millisecond)
			sys.Pipeline().Observe(sack.Heartbeat{Seq: uint64(i), At: now, Cap: 8})
			if sys.Pipeline().Pinned() {
				t.Fatal("pinned after clean heartbeat")
			}
			st := sys.CurrentState().Name
			valid := map[string]bool{"parked": true, "driving": true, "emergency": true, "safe_stop": true}
			if !valid[st] {
				t.Fatalf("final state %q undeclared", st)
			}
			_, _, eventsIn, eventsHit := sys.SACK.Stats()
			if eventsHit > eventsIn {
				t.Fatalf("accounting: hits=%d > in=%d", eventsHit, eventsIn)
			}
			return
		default:
		}
		ev := events[i%len(events)]
		if err := sys.Events().DeliverEvent(ev); err != nil &&
			!errors.Is(err, sack.ErrDegraded) && !errors.Is(err, sack.ErrUnknownEvent) {
			t.Fatalf("delivery %d: %v", i, err)
		}
		if i%7 == 0 {
			now := base.Add(time.Duration(i) * time.Millisecond)
			sys.Pipeline().Observe(sack.Heartbeat{Seq: uint64(i), At: now, Cap: 8})
			sys.Pipeline().Check(now)
		}
	}
}
