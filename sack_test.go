package sack_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	sack "repro"
	"repro/internal/sds"
	"repro/internal/trace"
	"repro/internal/vehicle"
	"repro/policies"
)

const basicPolicy = `
states {
  normal = 0
  emergency = 1
}
initial normal
permissions {
  DEVICE_READ
  CONTROL_CAR_DOORS
}
state_per {
  normal:    DEVICE_READ
  emergency: DEVICE_READ, CONTROL_CAR_DOORS
}
per_rules {
  DEVICE_READ {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
    allow read,write,ioctl /dev/vehicle/window*
  }
}
transitions {
  normal -> emergency on crash_detected
  emergency -> normal on all_clear
}
`

func TestNewValidation(t *testing.T) {
	if _, err := sack.New(""); err == nil {
		t.Fatal("empty policy accepted")
	}
	if _, err := sack.New("states {"); err == nil {
		t.Fatal("syntax error accepted")
	}
	if _, err := sack.New("states { a a }"); err == nil {
		t.Fatal("validation error accepted")
	}
}

// TestNewSystemShim keeps the deprecated struct-options constructor
// working: it must behave exactly like New.
func TestNewSystemShim(t *testing.T) {
	if _, err := sack.NewSystem(sack.Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	sys, err := sack.NewSystem(sack.Options{Mode: sack.Independent, PolicyText: basicPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if sys.CurrentState().Name != "normal" {
		t.Fatalf("state = %q", sys.CurrentState().Name)
	}
}

func TestPublicAPIPolicyHelpers(t *testing.T) {
	compiled, vr, err := sack.ParsePolicy(basicPolicy)
	if err != nil || !vr.OK() {
		t.Fatalf("ParsePolicy: %v %v", err, vr)
	}
	if compiled.Initial != "normal" {
		t.Errorf("initial = %q", compiled.Initial)
	}
	vr2, err := sack.CheckPolicy(basicPolicy)
	if err != nil || !vr2.OK() {
		t.Fatalf("CheckPolicy: %v", err)
	}
	profiles, err := sack.ParseProfiles("profile x /bin/x {\n /y r,\n}")
	if err != nil || len(profiles) != 1 {
		t.Fatalf("ParseProfiles: %v", err)
	}
}

func TestFullPipelineSDSToEnforcement(t *testing.T) {
	sys, err := sack.New(basicPolicy)
	if err != nil {
		t.Fatal(err)
	}
	root := sys.Kernel.Init()
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	service, err := sys.NewSDS(root, clock, sds.CrashDetector(8.0))
	if err != nil {
		t.Fatal(err)
	}

	// Drive the crash trace: sensors -> detector -> SACKfs -> SSM -> APE.
	events, err := trace.Replay(trace.CityDriveWithCrash(), clock, sys.Vehicle.Dynamics, service)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range events {
		if ev == "crash_detected" {
			found = true
		}
	}
	if !found {
		t.Fatalf("crash not detected; events = %v", events)
	}
	if sys.CurrentState().Name != "emergency" {
		t.Fatalf("state = %q", sys.CurrentState().Name)
	}

	// Enforcement follows: the door unlocks via ioctl now.
	fd, err := root.Open("/dev/vehicle/door0", sack.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Ioctl(fd, vehicle.IoctlDoorUnlock, 0); err != nil {
		t.Fatal(err)
	}
	if sys.Vehicle.Doors[0].State() != vehicle.DoorUnlocked {
		t.Fatal("door did not actuate")
	}
}

// TestCompatibilityMatrix reproduces §IV-D (Q3): ten distinct SACK
// policies, each deployed in both prototypes over the default AppArmor
// profiles, all coexisting with AppArmor untouched for unrelated paths.
func TestCompatibilityMatrix(t *testing.T) {
	aaProfiles := `
profile /usr/sbin/tcpdump {
  /usr/sbin/tcpdump r,
  /etc/protocols r,
}
profile guarded /usr/bin/guarded {
  /var/guarded/** rw,
}
`
	makePolicy := func(i int) string {
		return fmt.Sprintf(`
states { idle = 0 active = 1 }
initial idle
permissions { P%d }
state_per { active: P%d }
per_rules {
  P%d {
    allow read,write /srv/app%d/**
  }
}
transitions {
  idle -> active on go%d
  active -> idle on stop%d
}
`, i, i, i, i, i, i)
	}

	for i := 0; i < 10; i++ {
		for _, mode := range []struct {
			name string
			m    int
		}{{"independent", 0}, {"enhanced", 1}} {
			name := fmt.Sprintf("policy-%d/%s", i, mode.name)
			t.Run(name, func(t *testing.T) {
				m := sack.Independent
				if mode.m == 1 {
					m = sack.EnhancedAppArmor
				}
				sys, err := sack.New(makePolicy(i),
					sack.WithMode(m),
					sack.WithAppArmorProfiles(aaProfiles),
					sack.WithoutVehicle(),
				)
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				k := sys.Kernel
				root := k.Init()

				// The stack order is SACK first, per the paper.
				if got := k.LSM.String(); got != "sack,apparmor,capability" {
					t.Fatalf("stack = %q", got)
				}

				// 1. AppArmor's default profiles still confine their
				// subjects regardless of SACK.
				if err := k.WriteFile("/usr/bin/guarded", 0o755, []byte("g")); err != nil {
					t.Fatal(err)
				}
				if err := k.WriteFile("/var/guarded/data", 0o666, []byte("d")); err != nil {
					t.Fatal(err)
				}
				if err := k.WriteFile("/etc/other", 0o666, []byte("o")); err != nil {
					t.Fatal(err)
				}
				confined, _ := root.Fork()
				if err := confined.Exec("/usr/bin/guarded"); err != nil {
					t.Fatal(err)
				}
				if _, err := confined.ReadFileAll("/var/guarded/data"); err != nil {
					t.Fatalf("profile-granted read: %v", err)
				}
				if _, err := confined.ReadFileAll("/etc/other"); !sack.IsErrno(err, sack.EACCES) {
					t.Fatalf("profile-denied read: %v", err)
				}

				// 2. SACK's own policy works: the app area is gated on
				// the active state (independent mode enforces in SACK;
				// enhanced mode needs a managed profile, so there we only
				// check the SSM responds).
				appPath := fmt.Sprintf("/srv/app%d/cfg", i)
				if err := k.WriteFile(appPath, 0o666, []byte("c")); err != nil {
					t.Fatal(err)
				}
				if mode.m == 0 {
					if _, err := root.ReadFileAll(appPath); !sack.IsErrno(err, sack.EACCES) {
						t.Fatalf("idle-state read of covered path: %v", err)
					}
				}
				sys.DeliverEvent(sack.Event(fmt.Sprintf("go%d", i)))
				if sys.CurrentState().Name != "active" {
					t.Fatal("transition failed")
				}
				if _, err := root.ReadFileAll(appPath); err != nil {
					t.Fatalf("active-state read: %v", err)
				}

				// 3. Unrelated paths flow through both modules untouched.
				if _, err := root.ReadFileAll("/etc/other"); err != nil {
					t.Fatalf("unconfined root read: %v", err)
				}
			})
		}
	}
}

// TestSituationAwarenessAccuracy asserts the §IV-B claim of 100% event
// delivery accuracy over the securityfs path with four distinct events.
func TestSituationAwarenessAccuracy(t *testing.T) {
	policy := `
states { s0 = 0 s1 = 1 s2 = 2 s3 = 3 }
initial s0
transitions {
  s0 -> s1 on e0
  s1 -> s2 on e1
  s2 -> s3 on e2
  s3 -> s0 on e3
}
`
	sys, err := sack.New(policy, sack.WithoutVehicle())
	if err != nil {
		t.Fatal(err)
	}
	task := sys.Kernel.Init()
	fd, err := task.Open(sack.EventsFile, sack.OWronly, 0)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 2500 // 10000 events, 4 distinct
	for r := 0; r < rounds; r++ {
		for e := 0; e < 4; e++ {
			if _, err := task.Write(fd, []byte(fmt.Sprintf("e%d\n", e))); err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("s%d", (e+1)%4)
			if got := sys.CurrentState().Name; got != want {
				t.Fatalf("round %d event e%d: state %q, want %q", r, e, got, want)
			}
		}
	}
	_, _, eventsIn, eventsHit := sys.SACK.Stats()
	if eventsIn != rounds*4 || eventsHit != rounds*4 {
		t.Fatalf("accuracy: %d/%d", eventsHit, eventsIn)
	}
}

func TestEnhancedModeThroughFacade(t *testing.T) {
	sys, err := sack.New(basicPolicy, sack.WithMode(sack.EnhancedAppArmor))
	if err != nil {
		t.Fatal(err)
	}
	if sys.AppArmor == nil {
		t.Fatal("enhanced mode must create AppArmor")
	}
	base, err := sack.ParseProfiles(`
profile rescued /usr/bin/rescued {
  /etc/** r,
  /dev/vehicle/** r,
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AppArmor.LoadProfile(base[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.SACK.ManageProfile(base[0]); err != nil {
		t.Fatal(err)
	}

	k := sys.Kernel
	if err := k.WriteFile("/usr/bin/rescued", 0o755, []byte("r")); err != nil {
		t.Fatal(err)
	}
	daemon, _ := k.Init().Fork()
	if err := daemon.Exec("/usr/bin/rescued"); err != nil {
		t.Fatal(err)
	}
	probe := func() error {
		fd, err := daemon.Open("/dev/vehicle/door0", sack.ORdonly, 0)
		if err != nil {
			return err
		}
		defer daemon.Close(fd)
		_, err = daemon.Ioctl(fd, vehicle.IoctlDoorUnlock, 0)
		return err
	}
	if err := probe(); !sack.IsErrno(err, sack.EACCES) {
		t.Fatalf("normal-state ioctl: %v", err)
	}
	sys.DeliverEvent("crash_detected")
	if err := probe(); err != nil {
		t.Fatalf("emergency ioctl: %v", err)
	}
	sys.DeliverEvent("all_clear")
	if err := probe(); !sack.IsErrno(err, sack.EACCES) {
		t.Fatalf("post-recovery ioctl: %v", err)
	}
}

func TestAuditVisibleThroughFacade(t *testing.T) {
	sys, err := sack.New(basicPolicy)
	if err != nil {
		t.Fatal(err)
	}
	root := sys.Kernel.Init()
	// Provoke a denial.
	fd, err := root.Open("/dev/vehicle/door0", sack.ORdonly, 0)
	if err != nil {
		t.Fatal(err)
	}
	root.Ioctl(fd, vehicle.IoctlDoorUnlock, 0)
	denials := sys.Audit.Denials()
	if len(denials) == 0 {
		t.Fatal("no audit records")
	}
	if !strings.Contains(denials[0].Object, "door0") {
		t.Errorf("denial object = %q", denials[0].Object)
	}
}

func TestStateIntrospectionFiles(t *testing.T) {
	sys, err := sack.New(basicPolicy, sack.WithoutVehicle())
	if err != nil {
		t.Fatal(err)
	}
	task := sys.Kernel.Init()
	states, err := task.ReadFileAll("/sys/kernel/security/SACK/states")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(states), "normal = 0") || !strings.Contains(string(states), "emergency = 1") {
		t.Errorf("states file = %q", states)
	}
	// The policy file round-trips the source (root only).
	src, err := task.ReadFileAll("/sys/kernel/security/SACK/policy")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "CONTROL_CAR_DOORS") {
		t.Errorf("policy dump truncated: %d bytes", len(src))
	}
	// Administrative force-state via the state file.
	if err := task.WriteFileAll("/sys/kernel/security/SACK/state", []byte("emergency\n"), 0); err != nil {
		t.Fatal(err)
	}
	if sys.CurrentState().Name != "emergency" {
		t.Fatal("force-state failed")
	}
}

func TestPolicyReloadThroughSACKfs(t *testing.T) {
	sys, err := sack.New(basicPolicy, sack.WithoutVehicle())
	if err != nil {
		t.Fatal(err)
	}
	task := sys.Kernel.Init()
	newPolicy := strings.Replace(basicPolicy, "emergency = 1", "emergency = 1\n  lockdown = 2", 1)
	newPolicy = strings.Replace(newPolicy, "transitions {", "transitions {\n  normal -> lockdown on threat\n  lockdown -> normal on threat_over", 1)
	if err := task.WriteFileAll("/sys/kernel/security/SACK/policy", []byte(newPolicy), 0); err != nil {
		t.Fatalf("policy reload: %v", err)
	}
	sys.DeliverEvent("threat")
	if sys.CurrentState().Name != "lockdown" {
		t.Fatalf("state = %q after reload+threat", sys.CurrentState().Name)
	}
	// Garbage policies are rejected without clobbering the active one.
	if err := task.WriteFileAll("/sys/kernel/security/SACK/policy", []byte("states {"), 0); err == nil {
		t.Fatal("garbage policy accepted")
	}
	if sys.CurrentState().Name != "lockdown" {
		t.Fatal("failed reload disturbed state")
	}
}

// TestPolicyPackCompatibility runs the Q3 experiment over the shipped
// policy pack: all ten realistic policies boot in both prototypes over
// default AppArmor profiles; SACK checks first, AppArmor keeps confining
// its subjects, and the SSM responds to each policy's own events.
func TestPolicyPackCompatibility(t *testing.T) {
	aaProfiles := `
profile guarded /usr/bin/guarded {
  /var/guarded/** rw,
}
`
	for _, name := range policies.Names() {
		src := policies.MustLoad(name)
		for _, label := range []string{"independent", "enhanced"} {
			label := label
			t.Run(name+"/"+label, func(t *testing.T) {
				m := sack.Independent
				if label == "enhanced" {
					m = sack.EnhancedAppArmor
				}
				sys, err := sack.New(src,
					sack.WithMode(m), sack.WithAppArmorProfiles(aaProfiles))
				if err != nil {
					t.Fatalf("boot: %v", err)
				}
				k := sys.Kernel
				if got := k.LSM.String(); got != "sack,apparmor,capability" {
					t.Fatalf("stack = %q", got)
				}

				// AppArmor still confines its subject.
				if err := k.WriteFile("/usr/bin/guarded", 0o755, []byte("g")); err != nil {
					t.Fatal(err)
				}
				if err := k.WriteFile("/etc/other", 0o666, []byte("o")); err != nil {
					t.Fatal(err)
				}
				confined, _ := k.Init().Fork()
				if err := confined.Exec("/usr/bin/guarded"); err != nil {
					t.Fatal(err)
				}
				if _, err := confined.ReadFileAll("/etc/other"); !sack.IsErrno(err, sack.EACCES) {
					t.Fatalf("AppArmor confinement broken under %s: %v", name, err)
				}

				// The SSM reacts to the policy's own transition events:
				// walk every event the machine handles at least once.
				machine := sys.SACK.Machine()
				fired := false
				for _, ev := range machine.Events() {
					if machine.CanHandle(ev) {
						trans, _, _ := sys.DeliverEvent(ev)
						fired = fired || trans
					}
				}
				if !fired {
					t.Fatal("no transition fired for any declared event")
				}

				// Uncovered paths flow through both modules for root.
				if _, err := k.Init().ReadFileAll("/etc/other"); err != nil {
					t.Fatalf("pass-through broken: %v", err)
				}
			})
		}
	}
}
