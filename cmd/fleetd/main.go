// fleetd is the fleet control-plane daemon: it serves the policy-bundle
// registry and the decision-log ingestion endpoint over loopback HTTP
// for a fleet of SACK vehicles.
//
// Usage:
//
//	fleetd [-addr 127.0.0.1:7443] [-log-capacity N]
//	       [-group-admissions N] [-group-queue N] [-group g -policy file]...
//	       [-invariants g=file]...
//	       [-data-dir dir] [-snapshot-every N]
//	       [-hmac-key id=hexsecret] [-rollout-tick dur]
//
// Each -group/-policy pair seeds the registry with generation 1 for
// that group. Each -invariants g=file registers an invariant set for a
// group before seeding: every publish into that group — the seed
// included — is verified against the set and rejected with a witness
// trace on violation. Further generations are published at runtime with
// `sackctl bundle push` (POST /v1/bundle/{group}); vehicles download
// with ETag long-poll (GET /v1/bundle/{group}), report status (POST
// /v1/status), and ship decision logs (POST /v1/logs/{vehicle}).
// `sackctl fleet status` and `sackmon -fleet` read GET /v1/fleet.
//
// -data-dir makes the registry durable: publishes, rollouts, invariant
// sets, vehicle statuses, and the decision-log ledger are written to a
// WAL (+ periodic snapshots, every -snapshot-every records) in that
// directory and replayed on the next boot, so a restarted — or
// kill ‑9'd — fleetd resumes with exact generation counters and
// per-vehicle accounting. Seed groups that already exist in the
// replayed registry are left at their replayed generation rather than
// republished.
//
// -hmac-key attaches a signing key (key id + hex secret): every bundle
// fleetd publishes carries a detached HMAC-SHA256 signature that agents
// configured with the key's verifier check before applying. -rollout-
// tick drives staged rollouts from inside the daemon: every interval,
// each in-flight rollout is judged against its plan's brakes (see
// `sackctl bundle rollout`) and advanced, promoted, or halted.
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/sign"
	"repro/internal/store"
)

// pairList collects repeated -group/-policy flag pairs in order.
type pairList struct {
	vals *[]string
}

func (p pairList) String() string { return "" }
func (p pairList) Set(v string) error {
	*p.vals = append(*p.vals, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the process entry point; it returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	srv, addr, tick, code := newServer(args, stdout, stderr)
	if srv == nil {
		return code
	}
	if tick > 0 {
		go rolloutTicker(srv, tick, stdout)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "fleetd: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "fleetd: serving on http://%s\n", ln.Addr())
	if err := http.Serve(ln, fleet.Handler(srv)); err != nil {
		fmt.Fprintf(stderr, "fleetd: serve: %v\n", err)
		return 1
	}
	return 0
}

// rolloutTicker judges every in-flight staged rollout against its
// plan's brakes once per interval — the daemon-side alternative to an
// operator running `sackctl fleet rollout -tick` by hand.
func rolloutTicker(srv *fleet.Server, every time.Duration, stdout io.Writer) {
	t := time.NewTicker(every)
	defer t.Stop()
	reportedHalt := make(map[string]bool) // halted rollouts stay inspectable; log each halt once
	for range t.C {
		for _, g := range srv.Stats().Groups {
			st, err := srv.RolloutTick(g.Group)
			switch {
			case err == nil && st.Stage >= st.Stages:
				fmt.Fprintf(stdout, "fleetd: rollout promoted: group %s generation %d\n",
					st.Group, st.CandidateGen)
			case err == nil:
				delete(reportedHalt, st.Group)
			case errors.Is(err, fleet.ErrRolloutHalted) && !reportedHalt[st.Group]:
				reportedHalt[st.Group] = true
				fmt.Fprintf(stdout, "fleetd: rollout halted: group %s: %s\n", st.Group, st.HaltReason)
			}
		}
	}
}

// newServer parses flags and builds the seeded registry — the testable
// part of startup, separated from the blocking accept loop.
func newServer(args []string, stdout, stderr io.Writer) (*fleet.Server, string, time.Duration, int) {
	fs := flag.NewFlagSet("fleetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7443", "listen address (loopback)")
	logCap := fs.Int("log-capacity", fleet.DefaultLogCapacity, "decision-log ingestion buffer capacity (records)")
	shards := fs.Int("shards", fleet.DefaultShards, "vehicle-state shard count")
	groupAdmissions := fs.Int("group-admissions", fleet.DefaultGroupAdmissions, "concurrent log ingestions admitted per vehicle group (bulkhead)")
	groupQueue := fs.Int("group-queue", fleet.DefaultGroupQueue, "ingestions queued per group beyond the admission limit; excess is shed with 429")
	dataDir := fs.String("data-dir", "", "durable state directory (WAL + snapshots); empty = in-memory registry")
	snapEvery := fs.Uint64("snapshot-every", 4096, "with -data-dir: checkpoint a snapshot every N WAL records")
	hmacKey := fs.String("hmac-key", "", "id=hexsecret signing key; published bundles carry a detached HMAC-SHA256 signature")
	rolloutTick := fs.Duration("rollout-tick", 0, "judge in-flight staged rollouts every interval (0 = operator-driven via sackctl)")
	var groups, policies, invariants []string
	fs.Var(pairList{&groups}, "group", "vehicle group to seed (repeatable, paired with -policy)")
	fs.Var(pairList{&policies}, "policy", "policy file seeding the matching -group")
	fs.Var(pairList{&invariants}, "invariants", "group=file invariant set gating publishes into the group (repeatable)")
	if err := fs.Parse(args); err != nil {
		return nil, "", 0, 2
	}
	if len(groups) != len(policies) {
		fmt.Fprintf(stderr, "fleetd: %d -group flags but %d -policy flags; they pair up\n", len(groups), len(policies))
		return nil, "", 0, 2
	}

	opts := []fleet.ServerOption{fleet.WithLogCapacity(*logCap), fleet.WithShards(*shards),
		fleet.WithGroupBulkhead(*groupAdmissions, *groupQueue)}
	if *hmacKey != "" {
		id, hexSecret, ok := strings.Cut(*hmacKey, "=")
		if !ok || id == "" || hexSecret == "" {
			fmt.Fprintf(stderr, "fleetd: -hmac-key wants id=hexsecret, got %q\n", *hmacKey)
			return nil, "", 0, 2
		}
		secret, err := hex.DecodeString(hexSecret)
		if err != nil {
			fmt.Fprintf(stderr, "fleetd: -hmac-key secret is not hex: %v\n", err)
			return nil, "", 0, 2
		}
		signer, _ := sign.NewHMAC(id, secret)
		opts = append(opts, fleet.WithBundleSigner(signer))
		fmt.Fprintf(stdout, "fleetd: signing bundles with HMAC-SHA256 key %s\n", id)
	}

	var srv *fleet.Server
	if *dataDir != "" {
		st, err := store.Open(*dataDir)
		if err != nil {
			fmt.Fprintf(stderr, "fleetd: opening data dir: %v\n", err)
			return nil, "", 0, 1
		}
		opts = append(opts, fleet.WithSnapshotEvery(*snapEvery))
		srv, err = fleet.OpenServer(st, opts...)
		if err != nil {
			fmt.Fprintf(stderr, "fleetd: replaying %s: %v\n", *dataDir, err)
			return nil, "", 0, 1
		}
		for _, g := range srv.Stats().Groups {
			if g.Group != "" {
				fmt.Fprintf(stdout, "fleetd: group %s replayed at generation %d (%s)\n", g.Group, g.Generation, g.ETag)
			}
		}
	} else {
		srv = fleet.NewServer(opts...)
	}

	for _, spec := range invariants {
		g, file, ok := strings.Cut(spec, "=")
		if !ok || g == "" || file == "" {
			fmt.Fprintf(stderr, "fleetd: -invariants wants group=file, got %q\n", spec)
			return nil, "", 0, 2
		}
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(stderr, "fleetd: reading invariants for group %s: %v\n", g, err)
			return nil, "", 0, 1
		}
		if err := srv.SetInvariants(g, string(src)); err != nil {
			fmt.Fprintf(stderr, "fleetd: invariants for group %s: %v\n", g, err)
			return nil, "", 0, 1
		}
		fmt.Fprintf(stdout, "fleetd: group %s gated by invariants from %s\n", g, file)
	}
	for i, g := range groups {
		if _, err := srv.Bundle(g); err == nil {
			// Replayed from the WAL: the durable registry wins over the
			// seed so restarts do not burn a generation.
			fmt.Fprintf(stdout, "fleetd: group %s already in replayed registry; seed skipped\n", g)
			continue
		}
		src, err := os.ReadFile(policies[i])
		if err != nil {
			fmt.Fprintf(stderr, "fleetd: reading policy for group %s: %v\n", g, err)
			return nil, "", 0, 1
		}
		b, err := srv.Publish(g, string(src))
		if err != nil {
			fmt.Fprintf(stderr, "fleetd: seeding group %s: %v\n", g, err)
			return nil, "", 0, 1
		}
		fmt.Fprintf(stdout, "fleetd: group %s seeded at generation %d (%s)\n", g, b.Generation, b.ETag())
	}
	return srv, *addr, *rolloutTick, 0
}
