// fleetd is the fleet control-plane daemon: it serves the policy-bundle
// registry and the decision-log ingestion endpoint over loopback HTTP
// for a fleet of SACK vehicles.
//
// Usage:
//
//	fleetd [-addr 127.0.0.1:7443] [-log-capacity N]
//	       [-group-admissions N] [-group-queue N] [-group g -policy file]...
//	       [-invariants g=file]...
//
// Each -group/-policy pair seeds the registry with generation 1 for
// that group. Each -invariants g=file registers an invariant set for a
// group before seeding: every publish into that group — the seed
// included — is verified against the set and rejected with a witness
// trace on violation. Further generations are published at runtime with
// `sackctl bundle push` (POST /v1/bundle/{group}); vehicles download
// with ETag long-poll (GET /v1/bundle/{group}), report status (POST
// /v1/status), and ship decision logs (POST /v1/logs/{vehicle}).
// `sackctl fleet status` and `sackmon -fleet` read GET /v1/fleet.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/fleet"
)

// pairList collects repeated -group/-policy flag pairs in order.
type pairList struct {
	vals *[]string
}

func (p pairList) String() string { return "" }
func (p pairList) Set(v string) error {
	*p.vals = append(*p.vals, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the process entry point; it returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	srv, addr, code := newServer(args, stdout, stderr)
	if srv == nil {
		return code
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(stderr, "fleetd: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "fleetd: serving on http://%s\n", ln.Addr())
	if err := http.Serve(ln, fleet.Handler(srv)); err != nil {
		fmt.Fprintf(stderr, "fleetd: serve: %v\n", err)
		return 1
	}
	return 0
}

// newServer parses flags and builds the seeded registry — the testable
// part of startup, separated from the blocking accept loop.
func newServer(args []string, stdout, stderr io.Writer) (*fleet.Server, string, int) {
	fs := flag.NewFlagSet("fleetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7443", "listen address (loopback)")
	logCap := fs.Int("log-capacity", fleet.DefaultLogCapacity, "decision-log ingestion buffer capacity (records)")
	shards := fs.Int("shards", fleet.DefaultShards, "vehicle-state shard count")
	groupAdmissions := fs.Int("group-admissions", fleet.DefaultGroupAdmissions, "concurrent log ingestions admitted per vehicle group (bulkhead)")
	groupQueue := fs.Int("group-queue", fleet.DefaultGroupQueue, "ingestions queued per group beyond the admission limit; excess is shed with 429")
	var groups, policies, invariants []string
	fs.Var(pairList{&groups}, "group", "vehicle group to seed (repeatable, paired with -policy)")
	fs.Var(pairList{&policies}, "policy", "policy file seeding the matching -group")
	fs.Var(pairList{&invariants}, "invariants", "group=file invariant set gating publishes into the group (repeatable)")
	if err := fs.Parse(args); err != nil {
		return nil, "", 2
	}
	if len(groups) != len(policies) {
		fmt.Fprintf(stderr, "fleetd: %d -group flags but %d -policy flags; they pair up\n", len(groups), len(policies))
		return nil, "", 2
	}

	srv := fleet.NewServer(fleet.WithLogCapacity(*logCap), fleet.WithShards(*shards),
		fleet.WithGroupBulkhead(*groupAdmissions, *groupQueue))
	for _, spec := range invariants {
		g, file, ok := strings.Cut(spec, "=")
		if !ok || g == "" || file == "" {
			fmt.Fprintf(stderr, "fleetd: -invariants wants group=file, got %q\n", spec)
			return nil, "", 2
		}
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(stderr, "fleetd: reading invariants for group %s: %v\n", g, err)
			return nil, "", 1
		}
		if err := srv.SetInvariants(g, string(src)); err != nil {
			fmt.Fprintf(stderr, "fleetd: invariants for group %s: %v\n", g, err)
			return nil, "", 1
		}
		fmt.Fprintf(stdout, "fleetd: group %s gated by invariants from %s\n", g, file)
	}
	for i, g := range groups {
		src, err := os.ReadFile(policies[i])
		if err != nil {
			fmt.Fprintf(stderr, "fleetd: reading policy for group %s: %v\n", g, err)
			return nil, "", 1
		}
		b, err := srv.Publish(g, string(src))
		if err != nil {
			fmt.Fprintf(stderr, "fleetd: seeding group %s: %v\n", g, err)
			return nil, "", 1
		}
		fmt.Fprintf(stdout, "fleetd: group %s seeded at generation %d (%s)\n", g, b.Generation, b.ETag())
	}
	return srv, *addr, 0
}
