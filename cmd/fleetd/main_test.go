package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

const seedPolicy = `
states {
  normal = 0
  lockdown = 1
}

initial normal
failsafe lockdown

permissions {
  NORMAL
  LOCKED
}

state_per {
  normal:   NORMAL
  lockdown: LOCKED
}

per_rules {
  NORMAL {
    allow read /etc/**
  }
  LOCKED {
    allow read /etc/hostname
  }
}

transitions {
  normal -> lockdown on crash_detected
  lockdown -> normal on all_clear
}
`

func writePolicy(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "policy.sack")
	if err := os.WriteFile(path, []byte(seedPolicy), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNewServerSeedsGroups(t *testing.T) {
	var out, errb bytes.Buffer
	srv, addr, _, code := newServer(
		[]string{"-addr", "127.0.0.1:0", "-group", "default", "-policy", writePolicy(t)},
		&out, &errb)
	if srv == nil || code != 0 {
		t.Fatalf("newServer failed: code=%d stderr=%s", code, errb.String())
	}
	if addr != "127.0.0.1:0" {
		t.Fatalf("addr = %q", addr)
	}
	if !strings.Contains(out.String(), "group default seeded at generation 1") {
		t.Fatalf("seed output: %q", out.String())
	}
	if b, err := srv.Bundle("default"); err != nil || b.Generation != 1 {
		t.Fatalf("seeded bundle: %+v err=%v", b, err)
	}

	// The seeded server serves the wire protocol end to end.
	hs := httptest.NewServer(fleet.Handler(srv))
	defer hs.Close()
	c := fleet.NewClient(hs.URL)
	b, modified, err := c.FetchBundle("", "default", "", time.Millisecond)
	if err != nil || !modified || b.Generation != 1 {
		t.Fatalf("fetch from seeded fleetd: %+v modified=%v err=%v", b, modified, err)
	}
}

func TestNewServerRejectsBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if _, _, _, code := newServer([]string{"-group", "g"}, &out, &errb); code != 2 {
		t.Fatalf("unpaired -group: code = %d", code)
	}
	if _, _, _, code := newServer([]string{"-group", "g", "-policy", "/does/not/exist"}, &out, &errb); code != 1 {
		t.Fatalf("missing policy file: code = %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.sack")
	if err := os.WriteFile(bad, []byte("not a policy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, code := newServer([]string{"-group", "g", "-policy", bad}, &out, &errb); code != 1 {
		t.Fatalf("invalid policy: code = %d", code)
	}
}

func TestNewServerInvariantsGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	pol := write("policy.sack", seedPolicy)
	// seedPolicy grants reads under /etc/** to every subject; this set
	// forbids exactly that, so the seed itself must be refused.
	inv := write("strict.inv", "never - read /etc/hostname\n")

	var out, errb bytes.Buffer
	if _, _, _, code := newServer(
		[]string{"-invariants", "default=" + inv, "-group", "default", "-policy", pol},
		&out, &errb); code != 1 {
		t.Fatalf("violating seed accepted: code=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "witness:") {
		t.Fatalf("rejection lacks a witness trace: %s", errb.String())
	}

	// A compatible set lets the seed through and keeps gating the group.
	ok := write("ok.inv", "never /usr/bin/ivi write /dev/can/actuator*\n")
	out.Reset()
	errb.Reset()
	srv, _, _, code := newServer(
		[]string{"-invariants", "default=" + ok, "-group", "default", "-policy", pol},
		&out, &errb)
	if srv == nil || code != 0 {
		t.Fatalf("compatible seed failed: code=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "gated by invariants") {
		t.Fatalf("no gate banner: %q", out.String())
	}
	if got := srv.GroupInvariants("default"); !strings.Contains(got, "/dev/can/actuator") {
		t.Fatalf("group invariants not registered: %q", got)
	}

	// Malformed specs and sets are startup errors, not silent no-ops.
	if _, _, _, code := newServer([]string{"-invariants", "nofile"}, &out, &errb); code != 2 {
		t.Fatalf("bare -invariants spec: code=%d", code)
	}
	bad := write("bad.inv", "never - fly /x\n")
	if _, _, _, code := newServer([]string{"-invariants", "g=" + bad}, &out, &errb); code != 1 {
		t.Fatalf("bad invariant grammar: code=%d", code)
	}
	if _, _, _, code := newServer([]string{"-invariants", "g=/does/not/exist"}, &out, &errb); code != 1 {
		t.Fatalf("missing invariants file: code=%d", code)
	}
}

func TestNewServerDurableSignedRestart(t *testing.T) {
	dir := t.TempDir()
	pol := writePolicy(t)
	args := []string{
		"-data-dir", dir, "-snapshot-every", "8",
		"-hmac-key", "fleet-2026=00112233445566778899aabbccddeeff",
		"-rollout-tick", "50ms",
		"-group", "default", "-policy", pol,
	}

	var out, errb bytes.Buffer
	srv, _, tick, code := newServer(args, &out, &errb)
	if srv == nil || code != 0 {
		t.Fatalf("durable newServer failed: code=%d stderr=%s", code, errb.String())
	}
	if tick != 50*time.Millisecond {
		t.Fatalf("rollout tick = %v", tick)
	}
	if !strings.Contains(out.String(), "signing bundles with HMAC-SHA256 key fleet-2026") {
		t.Fatalf("no signing banner: %q", out.String())
	}
	b, err := srv.Bundle("default")
	if err != nil || b.Generation != 1 {
		t.Fatalf("seed: %+v err=%v", b, err)
	}
	if b.KeyID != "fleet-2026" || b.Signature == "" {
		t.Fatalf("seeded bundle is unsigned: key=%q sig=%q", b.KeyID, b.Signature)
	}
	if err := srv.Store().Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	// Same flags, same data dir: the replayed registry wins and the
	// seed must not burn generation 2.
	out.Reset()
	errb.Reset()
	srv2, _, _, code := newServer(args, &out, &errb)
	if srv2 == nil || code != 0 {
		t.Fatalf("restart failed: code=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "seed skipped") {
		t.Fatalf("restart republished the seed: %q", out.String())
	}
	b2, err := srv2.Bundle("default")
	if err != nil || b2.Generation != 1 || b2.Checksum != b.Checksum || b2.Signature != b.Signature {
		t.Fatalf("replayed bundle diverges: %+v err=%v", b2, err)
	}

	// Bad -hmac-key shapes are usage errors.
	if _, _, _, code := newServer([]string{"-hmac-key", "nosecret"}, &out, &errb); code != 2 {
		t.Fatalf("bare -hmac-key: code=%d", code)
	}
	if _, _, _, code := newServer([]string{"-hmac-key", "k=zz"}, &out, &errb); code != 2 {
		t.Fatalf("non-hex -hmac-key: code=%d", code)
	}
}
