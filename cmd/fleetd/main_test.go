package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
)

const seedPolicy = `
states {
  normal = 0
  lockdown = 1
}

initial normal
failsafe lockdown

permissions {
  NORMAL
  LOCKED
}

state_per {
  normal:   NORMAL
  lockdown: LOCKED
}

per_rules {
  NORMAL {
    allow read /etc/**
  }
  LOCKED {
    allow read /etc/hostname
  }
}

transitions {
  normal -> lockdown on crash_detected
  lockdown -> normal on all_clear
}
`

func writePolicy(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "policy.sack")
	if err := os.WriteFile(path, []byte(seedPolicy), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestNewServerSeedsGroups(t *testing.T) {
	var out, errb bytes.Buffer
	srv, addr, code := newServer(
		[]string{"-addr", "127.0.0.1:0", "-group", "default", "-policy", writePolicy(t)},
		&out, &errb)
	if srv == nil || code != 0 {
		t.Fatalf("newServer failed: code=%d stderr=%s", code, errb.String())
	}
	if addr != "127.0.0.1:0" {
		t.Fatalf("addr = %q", addr)
	}
	if !strings.Contains(out.String(), "group default seeded at generation 1") {
		t.Fatalf("seed output: %q", out.String())
	}
	if b, err := srv.Bundle("default"); err != nil || b.Generation != 1 {
		t.Fatalf("seeded bundle: %+v err=%v", b, err)
	}

	// The seeded server serves the wire protocol end to end.
	hs := httptest.NewServer(fleet.Handler(srv))
	defer hs.Close()
	c := fleet.NewClient(hs.URL)
	b, modified, err := c.FetchBundle("default", "", time.Millisecond)
	if err != nil || !modified || b.Generation != 1 {
		t.Fatalf("fetch from seeded fleetd: %+v modified=%v err=%v", b, modified, err)
	}
}

func TestNewServerRejectsBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if _, _, code := newServer([]string{"-group", "g"}, &out, &errb); code != 2 {
		t.Fatalf("unpaired -group: code = %d", code)
	}
	if _, _, code := newServer([]string{"-group", "g", "-policy", "/does/not/exist"}, &out, &errb); code != 1 {
		t.Fatalf("missing policy file: code = %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.sack")
	if err := os.WriteFile(bad, []byte("not a policy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, code := newServer([]string{"-group", "g", "-policy", bad}, &out, &errb); code != 1 {
		t.Fatalf("invalid policy: code = %d", code)
	}
}

func TestNewServerInvariantsGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	pol := write("policy.sack", seedPolicy)
	// seedPolicy grants reads under /etc/** to every subject; this set
	// forbids exactly that, so the seed itself must be refused.
	inv := write("strict.inv", "never - read /etc/hostname\n")

	var out, errb bytes.Buffer
	if _, _, code := newServer(
		[]string{"-invariants", "default=" + inv, "-group", "default", "-policy", pol},
		&out, &errb); code != 1 {
		t.Fatalf("violating seed accepted: code=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "witness:") {
		t.Fatalf("rejection lacks a witness trace: %s", errb.String())
	}

	// A compatible set lets the seed through and keeps gating the group.
	ok := write("ok.inv", "never /usr/bin/ivi write /dev/can/actuator*\n")
	out.Reset()
	errb.Reset()
	srv, _, code := newServer(
		[]string{"-invariants", "default=" + ok, "-group", "default", "-policy", pol},
		&out, &errb)
	if srv == nil || code != 0 {
		t.Fatalf("compatible seed failed: code=%d stderr=%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "gated by invariants") {
		t.Fatalf("no gate banner: %q", out.String())
	}
	if got := srv.GroupInvariants("default"); !strings.Contains(got, "/dev/can/actuator") {
		t.Fatalf("group invariants not registered: %q", got)
	}

	// Malformed specs and sets are startup errors, not silent no-ops.
	if _, _, code := newServer([]string{"-invariants", "nofile"}, &out, &errb); code != 2 {
		t.Fatalf("bare -invariants spec: code=%d", code)
	}
	bad := write("bad.inv", "never - fly /x\n")
	if _, _, code := newServer([]string{"-invariants", "g=" + bad}, &out, &errb); code != 1 {
		t.Fatalf("bad invariant grammar: code=%d", code)
	}
	if _, _, code := newServer([]string{"-invariants", "g=/does/not/exist"}, &out, &errb); code != 1 {
		t.Fatalf("missing invariants file: code=%d", code)
	}
}
