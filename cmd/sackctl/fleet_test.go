package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
)

const fleetTestPolicy = `
states {
  normal = 0
  lockdown = 1
}

initial normal
failsafe lockdown

permissions {
  NORMAL
  LOCKED
}

state_per {
  normal:   NORMAL
  lockdown: LOCKED
}

per_rules {
  NORMAL {
    allow read /etc/**
  }
  LOCKED {
    allow read /etc/hostname
  }
}

transitions {
  normal -> lockdown on crash_detected
  lockdown -> normal on all_clear
}
`

func TestBundlePushAndFleetStatus(t *testing.T) {
	srv := fleet.NewServer()
	hs := httptest.NewServer(fleet.Handler(srv))
	defer hs.Close()

	files := map[string]string{"p": fleetTestPolicy}
	code, out, errOut := runCtl(t, files, "bundle", "push", hs.URL, "default", "p")
	if code != 0 {
		t.Fatalf("bundle push: code=%d stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "pushed group default generation 1") {
		t.Fatalf("push output: %q", out)
	}
	if b, err := srv.Bundle("default"); err != nil || b.Generation != 1 {
		t.Fatalf("server bundle after push: %+v err=%v", b, err)
	}

	// A second push bumps the generation.
	code, out, _ = runCtl(t, files, "bundle", "push", hs.URL, "default", "p")
	if code != 0 || !strings.Contains(out, "generation 2") {
		t.Fatalf("second push: code=%d out=%q", code, out)
	}

	// Invalid policy is rejected locally, before it reaches the server.
	code, _, errOut = runCtl(t, map[string]string{"bad": "states { a a }"}, "bundle", "push", hs.URL, "default", "bad")
	if code != 1 || errOut == "" {
		t.Fatalf("invalid push: code=%d stderr=%q", code, errOut)
	}
	if b, _ := srv.Bundle("default"); b.Generation != 2 {
		t.Fatalf("invalid push changed the registry: %+v", b)
	}

	if err := srv.ReportStatus(fleet.VehicleStatus{Vehicle: "v1", Group: "default", AppliedGeneration: 2}); err != nil {
		t.Fatal(err)
	}
	code, out, errOut = runCtl(t, nil, "fleet", "status", hs.URL)
	if code != 0 {
		t.Fatalf("fleet status: code=%d stderr=%s", code, errOut)
	}
	for _, want := range []string{"vehicles: 1", "group default:", "generation=2", "converged=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet status missing %q:\n%s", want, out)
		}
	}
}

func TestFleetSubcommandUsage(t *testing.T) {
	if code, _, _ := runCtl(t, nil, "bundle", "pull", "u", "g", "p"); code != 2 {
		t.Fatalf("bundle pull accepted: %d", code)
	}
	if code, _, _ := runCtl(t, nil, "fleet"); code != 2 {
		t.Fatalf("bare fleet accepted: %d", code)
	}
}
