package main

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
)

const fleetTestPolicy = `
states {
  normal = 0
  lockdown = 1
}

initial normal
failsafe lockdown

permissions {
  NORMAL
  LOCKED
}

state_per {
  normal:   NORMAL
  lockdown: LOCKED
}

per_rules {
  NORMAL {
    allow read /etc/**
  }
  LOCKED {
    allow read /etc/hostname
  }
}

transitions {
  normal -> lockdown on crash_detected
  lockdown -> normal on all_clear
}
`

func TestBundlePushAndFleetStatus(t *testing.T) {
	srv := fleet.NewServer()
	hs := httptest.NewServer(fleet.Handler(srv))
	defer hs.Close()

	files := map[string]string{"p": fleetTestPolicy}
	code, out, errOut := runCtl(t, files, "bundle", "push", hs.URL, "default", "p")
	if code != 0 {
		t.Fatalf("bundle push: code=%d stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "pushed group default generation 1") {
		t.Fatalf("push output: %q", out)
	}
	if b, err := srv.Bundle("default"); err != nil || b.Generation != 1 {
		t.Fatalf("server bundle after push: %+v err=%v", b, err)
	}

	// A second push bumps the generation.
	code, out, _ = runCtl(t, files, "bundle", "push", hs.URL, "default", "p")
	if code != 0 || !strings.Contains(out, "generation 2") {
		t.Fatalf("second push: code=%d out=%q", code, out)
	}

	// Invalid policy is rejected locally, before it reaches the server.
	code, _, errOut = runCtl(t, map[string]string{"bad": "states { a a }"}, "bundle", "push", hs.URL, "default", "bad")
	if code != 1 || errOut == "" {
		t.Fatalf("invalid push: code=%d stderr=%q", code, errOut)
	}
	if b, _ := srv.Bundle("default"); b.Generation != 2 {
		t.Fatalf("invalid push changed the registry: %+v", b)
	}

	if err := srv.ReportStatus(fleet.VehicleStatus{Vehicle: "v1", Group: "default", AppliedGeneration: 2}); err != nil {
		t.Fatal(err)
	}
	code, out, errOut = runCtl(t, nil, "fleet", "status", hs.URL)
	if code != 0 {
		t.Fatalf("fleet status: code=%d stderr=%s", code, errOut)
	}
	for _, want := range []string{"vehicles: 1", "group default:", "generation=2", "converged=1",
		"wire_ingest: json_batches=", "wire_fanout: full_pulls="} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet status missing %q:\n%s", want, out)
		}
	}
}

func TestFleetSubcommandUsage(t *testing.T) {
	if code, _, _ := runCtl(t, nil, "bundle", "pull", "u", "g", "p"); code != 2 {
		t.Fatalf("bundle pull accepted: %d", code)
	}
	if code, _, _ := runCtl(t, nil, "fleet"); code != 2 {
		t.Fatalf("bare fleet accepted: %d", code)
	}
}

func TestBundlePushWithInvariants(t *testing.T) {
	srv := fleet.NewServer()
	hs := httptest.NewServer(fleet.Handler(srv))
	defer hs.Close()

	// Local verification stops a violating bundle before the network.
	files := map[string]string{"p": verifyBadPolicy, "inv": verifyNever}
	code, _, errOut := runCtl(t, files, "bundle", "push", hs.URL, "canbus", "p", "inv")
	if code != 3 || !strings.Contains(errOut, "witness:") {
		t.Fatalf("violating push: code=%d stderr=%q", code, errOut)
	}
	if _, err := srv.Bundle("canbus"); err == nil {
		t.Fatal("violating bundle reached the registry")
	}

	// A compliant bundle publishes with its invariants embedded.
	files = map[string]string{"p": fleetTestPolicy, "inv": verifyNever}
	code, out, errOut := runCtl(t, files, "bundle", "push", hs.URL, "canbus", "p", "inv")
	if code != 0 {
		t.Fatalf("compliant push: code=%d stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "generation 1") {
		t.Fatalf("push output: %q", out)
	}
	if b, err := srv.Bundle("canbus"); err != nil || b.Invariants != verifyNever {
		t.Fatalf("bundle invariants after push: %+v err=%v", b, err)
	}

	// A group set registered server-side rejects a push that carries no
	// invariants of its own; the 422 witness surfaces in the error.
	if err := srv.SetInvariants("locked", "never - read /etc/hostname"); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runCtl(t, map[string]string{"p": fleetTestPolicy}, "bundle", "push", hs.URL, "locked", "p")
	if code != 1 || !strings.Contains(errOut, "witness:") {
		t.Fatalf("server-side gate: code=%d stderr=%q", code, errOut)
	}
}

func TestBundleRolloutLifecycle(t *testing.T) {
	srv := fleet.NewServer()
	hs := httptest.NewServer(fleet.Handler(srv))
	defer hs.Close()

	files := map[string]string{"p": fleetTestPolicy}
	if code, _, errOut := runCtl(t, files, "bundle", "push", hs.URL, "default", "p"); code != 0 {
		t.Fatalf("seed push: code=%d stderr=%s", code, errOut)
	}

	// Stage a rollout: 50% canary cohort, strict denial brake.
	code, out, errOut := runCtl(t, files, "bundle", "rollout", hs.URL, "default", "p",
		"-stages", "50,100", "-max-denial-rate", "0.2", "-min-samples", "1")
	if code != 0 {
		t.Fatalf("bundle rollout: code=%d stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "candidate generation 2") || !strings.Contains(out, "stage: 1/2") {
		t.Fatalf("rollout output: %q", out)
	}

	// Status command reads it back.
	code, out, errOut = runCtl(t, nil, "fleet", "rollout", hs.URL, "default", "status")
	if code != 0 || !strings.Contains(out, "candidate: generation=2") {
		t.Fatalf("rollout status: code=%d out=%q stderr=%s", code, out, errOut)
	}

	// Find a canary empirically: a vehicle the split serves the
	// candidate to. Then regress it — every decision denied.
	canary := ""
	for i := 0; i < 200 && canary == ""; i++ {
		id := fmt.Sprintf("veh-%03d", i)
		if b, mod, err := srv.FetchBundle(id, "default", "", 0); err == nil && mod && b.Generation == 2 {
			canary = id
		}
	}
	if canary == "" {
		t.Fatal("no canary in 200 vehicles at a 50% split")
	}
	// Status report first: ingestion attributes a vehicle's records to
	// the rollout via the group the vehicle last reported.
	if err := srv.ReportStatus(fleet.VehicleStatus{Vehicle: canary, Group: "default", AppliedGeneration: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.UploadLogs(canary, []fleet.LogRecord{
		{Seq: 1, Op: "write", Object: "/dev/can/actuator0", Action: "DENIED"},
		{Seq: 2, Op: "write", Object: "/dev/can/actuator1", Action: "DENIED"},
	}); err != nil {
		t.Fatal(err)
	}

	// Tick trips the brake: distinct exit code, halt reason printed.
	code, out, _ = runCtl(t, nil, "fleet", "rollout", hs.URL, "default", "tick")
	if code != 3 || !strings.Contains(out, "rollout halted") {
		t.Fatalf("tick on regression: code=%d out=%q", code, out)
	}

	// Abort clears it; the group publishes normally again.
	if code, _, errOut := runCtl(t, nil, "fleet", "rollout", hs.URL, "default", "abort"); code != 0 {
		t.Fatalf("abort: code=%d stderr=%s", code, errOut)
	}
	if code, _, _ := runCtl(t, nil, "fleet", "rollout", hs.URL, "default", "status"); code != 1 {
		t.Fatalf("status after abort should report no rollout, code=%d", code)
	}

	// A clean single-stage rollout promotes on tick.
	code, _, errOut = runCtl(t, files, "bundle", "rollout", hs.URL, "default", "p", "-stages", "100")
	if code != 0 {
		t.Fatalf("second rollout: code=%d stderr=%s", code, errOut)
	}
	if err := srv.ReportStatus(fleet.VehicleStatus{Vehicle: "veh-000", Group: "default", AppliedGeneration: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.UploadLogs("veh-000", []fleet.LogRecord{
		{Seq: 3, Op: "read", Object: "/etc/hostname", Action: "ALLOWED"},
	}); err != nil {
		t.Fatal(err)
	}
	code, out, errOut = runCtl(t, nil, "fleet", "rollout", hs.URL, "default", "tick")
	if code != 0 || !strings.Contains(out, "rollout promoted") {
		t.Fatalf("promote tick: code=%d out=%q stderr=%s", code, out, errOut)
	}
	if b, err := srv.Bundle("default"); err != nil || b.Generation != 3 {
		t.Fatalf("promotion did not install the candidate: %+v err=%v", b, err)
	}

	// Bad stage specs are usage errors, caught before any HTTP.
	if code, _, _ := runCtl(t, files, "bundle", "rollout", hs.URL, "default", "p", "-stages", "ten"); code != 2 {
		t.Fatalf("bad -stages accepted: code=%d", code)
	}
}
