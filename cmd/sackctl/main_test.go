package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/policies"
)

// fakeFS serves policy files from a map.
func fakeFS(files map[string]string) func(string) ([]byte, error) {
	return func(name string) ([]byte, error) {
		if content, ok := files[name]; ok {
			return []byte(content), nil
		}
		return nil, errors.New("no such file")
	}
}

func runCtl(t *testing.T, files map[string]string, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut, fakeFS(files))
	return code, out.String(), errOut.String()
}

func TestExampleIsSelfChecking(t *testing.T) {
	code, out, _ := runCtl(t, nil, "example")
	if code != 0 || !strings.Contains(out, "per_rules") {
		t.Fatalf("example: code=%d out=%q", code, out)
	}
	// The shipped example must validate cleanly.
	code, out2, errOut := runCtl(t, map[string]string{"p": out}, "check", "p")
	if code != 0 {
		t.Fatalf("example does not validate: %s%s", out2, errOut)
	}
	if !strings.Contains(out2, "0 warnings") {
		t.Fatalf("example has warnings: %s", out2)
	}
}

func TestCheckValidPolicy(t *testing.T) {
	files := map[string]string{"p": `
states { a b }
initial a
transitions { a -> b on go }
`}
	code, out, _ := runCtl(t, files, "check", "p")
	if code != 0 || !strings.Contains(out, "OK: 2 states") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestCheckReportsErrorsNonZero(t *testing.T) {
	files := map[string]string{"p": "states { a a }"}
	code, out, _ := runCtl(t, files, "check", "p")
	if code == 0 {
		t.Fatal("invalid policy passed")
	}
	if !strings.Contains(out, "duplicate state") {
		t.Fatalf("out = %q", out)
	}
}

func TestCheckSyntaxError(t *testing.T) {
	files := map[string]string{"p": "states {"}
	code, _, errOut := runCtl(t, files, "check", "p")
	if code == 0 || !strings.Contains(errOut, "sackctl:") {
		t.Fatalf("code=%d err=%q", code, errOut)
	}
}

func TestCompileOutput(t *testing.T) {
	files := map[string]string{"p": `
states { idle = 0 active = 7 }
initial idle
permissions { P }
state_per { active: P }
per_rules { P { allow read /srv/** } }
transitions { idle -> active on go }
`}
	code, out, _ := runCtl(t, files, "compile", "p")
	if code != 0 {
		t.Fatalf("compile failed: %q", out)
	}
	for _, frag := range []string{
		"initial state: idle",
		"encoding=7",
		"idle -> active on go",
		"coverage: 1 patterns",
		"allow read /srv/**",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("compile output missing %q:\n%s", frag, out)
		}
	}
}

func TestFmtRoundTrips(t *testing.T) {
	files := map[string]string{"p": "states{a b}\ninitial a\ntransitions{a->b on go}"}
	code, out, _ := runCtl(t, files, "fmt", "p")
	if code != 0 {
		t.Fatalf("fmt failed: %q", out)
	}
	// Formatted output must itself check clean.
	code, _, errOut := runCtl(t, map[string]string{"q": out}, "check", "q")
	if code != 0 {
		t.Fatalf("formatted output invalid: %s", errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCtl(t, nil); code != 2 {
		t.Error("no args should be usage error")
	}
	if code, _, _ := runCtl(t, nil, "bogus"); code != 2 {
		t.Error("unknown verb should be usage error")
	}
	if code, _, _ := runCtl(t, nil, "check"); code != 2 {
		t.Error("missing file should be usage error")
	}
	if code, _, _ := runCtl(t, nil, "check", "missing"); code != 1 {
		t.Error("unreadable file should be error")
	}
}

func TestSimulate(t *testing.T) {
	files := map[string]string{"p": `
states { normal emergency }
initial normal
permissions { P }
state_per { emergency: P }
per_rules { P { allow read /x } }
transitions {
  normal -> emergency on crash
  emergency -> normal on clear
}
`}
	code, out, _ := runCtl(t, files, "simulate", "p", "crash", "bogus", "clear")
	if code != 0 {
		t.Fatalf("simulate failed: %q", out)
	}
	for _, frag := range []string{
		`event "crash": normal -> emergency`,
		`event "bogus": ignored in state emergency`,
		`event "clear": emergency -> normal`,
		"permissions=[P] rules=1",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("simulate output missing %q:\n%s", frag, out)
		}
	}
	if code, _, _ := runCtl(t, files, "simulate", "p"); code != 2 {
		t.Error("simulate without events should be usage error")
	}
}

func TestDiffVerb(t *testing.T) {
	old := "states { a b }\ninitial a\ntransitions { a -> b on go }"
	new := "states { a b c }\ninitial a\ntransitions { a -> b on go\n b -> c on more }"
	files := map[string]string{"old": old, "new": new}
	code, out, _ := runCtl(t, files, "diff", "old", "new")
	if code != 0 {
		t.Fatalf("diff failed: %q", out)
	}
	for _, frag := range []string{"state added: c", "transition added: b -> c on more"} {
		if !strings.Contains(out, frag) {
			t.Errorf("diff missing %q:\n%s", frag, out)
		}
	}
	code, out, _ = runCtl(t, map[string]string{"a": old, "b": old}, "diff", "a", "b")
	if code != 0 || !strings.Contains(out, "equivalent") {
		t.Fatalf("identical diff: code=%d out=%q", code, out)
	}
}

func TestReloadVerb(t *testing.T) {
	old := `
states { normal = 0 emergency = 1 }
initial normal
permissions { NORMAL }
state_per { normal: NORMAL emergency: NORMAL }
per_rules { NORMAL { allow read /etc/** } }
transitions {
  normal -> emergency on crash_detected
  emergency -> normal on all_clear
}
`
	new := strings.Replace(old, "allow read /etc/**", "allow read /etc/hostname", 1)
	files := map[string]string{"old": old, "new": new}

	// Events drive the booted system before the reload; the applied diff
	// and the kernel's reload file are both printed.
	code, out, errOut := runCtl(t, files, "reload", "old", "new", "crash_detected")
	if code != 0 {
		t.Fatalf("reload failed: %s%s", out, errOut)
	}
	for _, frag := range []string{
		"state before reload: emergency",
		"applied: 4 changes: 2 added, 2 removed",
		"rule removed",
		"rule added",
		"state after reload: emergency",
		"generation: 2",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("reload output missing %q:\n%s", frag, out)
		}
	}

	// A rejected reload leaves a non-zero exit and reports why.
	code, _, errOut = runCtl(t, map[string]string{"old": old, "new": "states { a a }"}, "reload", "old", "new")
	if code != 1 || !strings.Contains(errOut, "reload rejected") {
		t.Fatalf("bad reload: code=%d err=%q", code, errOut)
	}
}

func TestPackVerb(t *testing.T) {
	code, out, _ := runCtl(t, nil, "pack")
	if code != 0 || !strings.Contains(out, "emergency-doors") {
		t.Fatalf("pack listing: code=%d out=%q", code, out)
	}
	code, out, _ = runCtl(t, nil, "pack", "speed-gate")
	if code != 0 || !strings.Contains(out, "low_speed") {
		t.Fatalf("pack load: code=%d", code)
	}
	// Pack members must check clean through the same tool.
	code, checkOut, errOut := runCtl(t, map[string]string{"p": out}, "check", "p")
	if code != 0 {
		t.Fatalf("pack policy fails check: %s%s", checkOut, errOut)
	}
	if code, _, _ := runCtl(t, nil, "pack", "bogus"); code != 1 {
		t.Error("unknown pack name should fail")
	}
}

func TestMetricsBootsAndReports(t *testing.T) {
	files := map[string]string{"p": examplePolicy}
	code, out, errOut := runCtl(t, files, "metrics", "p", "crash_detected", "all_clear")
	if code != 0 {
		t.Fatalf("code=%d out=%s err=%s", code, out, errOut)
	}
	for _, frag := range []string{
		`event "crash_detected": normal -> emergency`,
		`event "all_clear": emergency -> normal`,
		"/sys/kernel/security/sack/metrics",
		"hook file_open",
		"avc sack",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("metrics output missing %q:\n%s", frag, out)
		}
	}
}

func TestMetricsUsageAndErrors(t *testing.T) {
	code, _, _ := runCtl(t, nil, "metrics")
	if code != 2 {
		t.Errorf("missing args exit = %d", code)
	}
	code, _, _ = runCtl(t, map[string]string{"p": "states {"}, "metrics", "p")
	if code != 1 {
		t.Errorf("bad policy exit = %d", code)
	}
}

func TestChaosStallDegradesToFailsafe(t *testing.T) {
	files := map[string]string{"p": mustPack(t, "failsafe")}
	code, out, errOut := runCtl(t, files,
		"chaos", "p", "stall:transmitter:after=1", "driving_started", "crash_detected")
	if code != 0 {
		t.Fatalf("code=%d err=%s", code, errOut)
	}
	for _, frag := range []string{
		"final state: safe_stop", // stalled transmitter pinned the failsafe state
		"degraded: true",
		"reason: heartbeat_lapse",
		"-- fault injector --",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("chaos output missing %q:\n%s", frag, out)
		}
	}
}

func TestChaosCleanPipeDelivers(t *testing.T) {
	files := map[string]string{"p": mustPack(t, "failsafe")}
	code, out, errOut := runCtl(t, files, "chaos", "p", "", "driving_started")
	if code != 0 {
		t.Fatalf("code=%d err=%s", code, errOut)
	}
	if !strings.Contains(out, "state driving") || !strings.Contains(out, "degraded: false") {
		t.Errorf("clean chaos run wrong:\n%s", out)
	}
}

func TestChaosErrors(t *testing.T) {
	if code, _, _ := runCtl(t, nil, "chaos", "p"); code != 2 {
		t.Errorf("missing spec: code=%d", code)
	}
	files := map[string]string{"p": mustPack(t, "failsafe")}
	if code, _, _ := runCtl(t, files, "chaos", "p", "explode:transmitter"); code != 2 {
		t.Errorf("bad spec: code=%d", code)
	}
	if code, _, _ := runCtl(t, nil, "chaos", "missing", "drop:canbus"); code != 1 {
		t.Errorf("missing policy: code=%d", code)
	}
}

func mustPack(t *testing.T, name string) string {
	t.Helper()
	src, err := policies.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	return src
}
