package main

import (
	"strings"
	"testing"
)

// verifyBadPolicy hands the IVI unconditional actuator writes — the
// access the baseline invariant set forbids in every state.
const verifyBadPolicy = `
states { workshop }
initial workshop
permissions { CAN }
state_per { workshop: CAN }
per_rules { CAN { allow write /dev/can/actuator* } }
`

const verifyNever = "never /usr/bin/ivi write /dev/can/actuator*\n"

func TestVerifyDefaultsToBaseline(t *testing.T) {
	code, out, errOut := runCtl(t, map[string]string{"p": fleetTestPolicy}, "verify", "p")
	if code != 0 {
		t.Fatalf("verify against baseline: code=%d stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "all invariants hold") {
		t.Fatalf("verify output: %q", out)
	}
}

func TestVerifyViolationExitsThreeWithWitness(t *testing.T) {
	files := map[string]string{"p": verifyBadPolicy, "inv": verifyNever}
	code, out, _ := runCtl(t, files, "verify", "p", "-invariants", "inv")
	if code != 3 {
		t.Fatalf("violating verify: code=%d out=%s", code, out)
	}
	for _, frag := range []string{"violation", "witness:", "/usr/bin/ivi", "/dev/can/actuator", "trace:", "workshop", "rule:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("verify output lacks %q:\n%s", frag, out)
		}
	}
	// The baseline default catches the same leak.
	code, out, _ = runCtl(t, files, "verify", "p")
	if code != 3 || !strings.Contains(out, "witness:") {
		t.Fatalf("baseline default missed the violation: code=%d out=%s", code, out)
	}
}

func TestVerifyErrors(t *testing.T) {
	if code, _, _ := runCtl(t, nil, "verify"); code != 2 {
		t.Fatalf("bare verify: code=%d", code)
	}
	if code, _, _ := runCtl(t, nil, "verify", "p", "-invariants"); code != 2 {
		t.Fatalf("dangling -invariants: code=%d", code)
	}
	if code, _, _ := runCtl(t, map[string]string{"p": fleetTestPolicy}, "verify", "missing"); code != 1 {
		t.Fatalf("missing policy file: code=%d", code)
	}
	files := map[string]string{"p": fleetTestPolicy, "inv": "never - fly /x"}
	if code, _, errOut := runCtl(t, files, "verify", "p", "-invariants", "inv"); code != 2 || !strings.Contains(errOut, "unknown operation") {
		t.Fatalf("bad invariant grammar: code=%d stderr=%q", code, errOut)
	}
	if code, _, _ := runCtl(t, map[string]string{"p": "states { a a }"}, "verify", "p"); code != 1 {
		t.Fatalf("invalid policy: code=%d", code)
	}
}
