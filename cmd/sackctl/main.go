// sackctl is the policy administration tool: check (parse + validate
// with conflict detection), compile (dump the enforcement-ready form),
// and fmt (canonical formatting) for SACK policy files.
//
// Usage:
//
//	sackctl check  <policy-file>   validate; non-zero exit on errors
//	sackctl compile <policy-file>  show states, rule sets, transitions
//	sackctl fmt    <policy-file>   print canonical formatting
//	sackctl simulate <policy-file> <event>...  dry-run the SSM over events
//	sackctl metrics <policy-file> [event...]  boot, drive events + a probe
//	                               workload, print hook/AVC metrics
//	sackctl diff <old-file> <new-file>  show what a policy reload changes
//	sackctl reload <old-file> <new-file> [event...]  boot the old policy,
//	                               drive events, commit the new policy and
//	                               print the diff the kernel applied
//	sackctl pack [name]            list or print the embedded policy pack
//	sackctl decide <policy-file> <subject> <object> <ops> [event...]  boot,
//	                               drive events, answer one access query
//	                               ("-" subject = unconfined; ops comma-
//	                               separated, e.g. read,write)
//	sackctl chaos <policy-file> <fault-spec> [event...]  drive events under
//	                               fault injection, print pipeline health
//	sackctl verify <policy-file> [-invariants <file>]  exhaustively check
//	                               an invariant set against the policy's
//	                               full situation product space; exit 0
//	                               when every invariant holds, 3 with a
//	                               witness trace per violation (defaults
//	                               to the pack baseline set)
//	sackctl bundle push <url> <group> <policy-file> [invariants-file]
//	                               validate (and, with an invariants
//	                               file, verify) the policy, then publish
//	                               it as the group's next bundle
//	                               generation on a fleetd at <url>
//	sackctl fleet status <url>     print a fleetd's aggregate fleet view
//	sackctl example                print a commented example policy
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	sack "repro"
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/sds"
	"repro/internal/ssm"
	"repro/policies"
)

const examplePolicy = `# SACK policy: door control only in emergencies.
states {
  normal = 0
  emergency = 1
}

initial normal

permissions {
  NORMAL
  CONTROL_CAR_DOORS
}

state_per {
  normal:    NORMAL
  emergency: NORMAL, CONTROL_CAR_DOORS
}

per_rules {
  NORMAL {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
    allow read,write,ioctl /dev/vehicle/window* subject /usr/bin/rescued
  }
}

transitions {
  normal -> emergency on crash_detected
  emergency -> normal on all_clear
}
`

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, os.ReadFile))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer, readFile func(string) ([]byte, error)) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "example":
		fmt.Fprint(stdout, examplePolicy)
		return 0
	case "check", "compile", "fmt":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		data, err := readFile(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: reading policy: %v\n", err)
			return 1
		}
		switch args[0] {
		case "check":
			return check(string(data), stdout, stderr)
		case "compile":
			return compile(string(data), stdout, stderr)
		case "fmt":
			return format(string(data), stdout, stderr)
		}
	case "simulate":
		if len(args) < 3 {
			usage(stderr)
			return 2
		}
		data, err := readFile(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: reading policy: %v\n", err)
			return 1
		}
		return simulate(string(data), args[2:], stdout, stderr)
	case "metrics":
		if len(args) < 2 {
			usage(stderr)
			return 2
		}
		data, err := readFile(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: reading policy: %v\n", err)
			return 1
		}
		return metrics(string(data), args[2:], stdout, stderr)
	case "diff", "reload":
		if len(args) < 3 || (args[0] == "diff" && len(args) != 3) {
			usage(stderr)
			return 2
		}
		oldData, err := readFile(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: reading old policy: %v\n", err)
			return 1
		}
		newData, err := readFile(args[2])
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: reading new policy: %v\n", err)
			return 1
		}
		if args[0] == "reload" {
			return reload(string(oldData), string(newData), args[3:], stdout, stderr)
		}
		return diff(string(oldData), string(newData), stdout, stderr)
	case "pack":
		if len(args) == 1 {
			for _, name := range policies.Names() {
				fmt.Fprintln(stdout, name)
			}
			return 0
		}
		src, err := policies.Load(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, src)
		return 0
	case "decide":
		if len(args) < 5 {
			usage(stderr)
			return 2
		}
		data, err := readFile(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: reading policy: %v\n", err)
			return 1
		}
		return decide(string(data), args[2], args[3], args[4], args[5:], stdout, stderr)
	case "chaos":
		if len(args) < 3 {
			usage(stderr)
			return 2
		}
		data, err := readFile(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: reading policy: %v\n", err)
			return 1
		}
		return chaos(string(data), args[2], args[3:], stdout, stderr)
	case "verify":
		var invFile string
		switch {
		case len(args) == 2:
		case len(args) == 4 && args[2] == "-invariants":
			invFile = args[3]
		default:
			usage(stderr)
			return 2
		}
		data, err := readFile(args[1])
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: reading policy: %v\n", err)
			return 1
		}
		invSrc := policies.Baseline()
		if invFile != "" {
			inv, err := readFile(invFile)
			if err != nil {
				fmt.Fprintf(stderr, "sackctl: reading invariants: %v\n", err)
				return 1
			}
			invSrc = string(inv)
		}
		return verifyPolicy(string(data), invSrc, stdout, stderr)
	case "bundle":
		switch {
		case (len(args) == 5 || len(args) == 6) && args[1] == "push":
			data, err := readFile(args[4])
			if err != nil {
				fmt.Fprintf(stderr, "sackctl: reading policy: %v\n", err)
				return 1
			}
			var invariants string
			if len(args) == 6 {
				inv, err := readFile(args[5])
				if err != nil {
					fmt.Fprintf(stderr, "sackctl: reading invariants: %v\n", err)
					return 1
				}
				invariants = string(inv)
			}
			return bundlePush(args[2], args[3], string(data), invariants, stdout, stderr)
		case len(args) >= 5 && args[1] == "rollout":
			return bundleRollout(args[2], args[3], args[4], args[5:], stdout, stderr, readFile)
		}
		usage(stderr)
		return 2
	case "fleet":
		switch {
		case len(args) == 3 && args[1] == "status":
			return fleetStatus(args[2], stdout, stderr)
		case len(args) >= 4 && args[1] == "rollout":
			return fleetRollout(args[2], args[3], args[4:], stdout, stderr)
		}
		usage(stderr)
		return 2
	}
	usage(stderr)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: sackctl {check|compile|fmt} <policy-file>")
	fmt.Fprintln(w, "       sackctl simulate <policy-file> <event>...")
	fmt.Fprintln(w, "       sackctl metrics <policy-file> [event...]")
	fmt.Fprintln(w, "       sackctl diff <old-file> <new-file>")
	fmt.Fprintln(w, "       sackctl reload <old-file> <new-file> [event...]")
	fmt.Fprintln(w, "       sackctl pack [name]")
	fmt.Fprintln(w, "       sackctl decide <policy-file> <subject> <object> <ops> [event...]")
	fmt.Fprintln(w, "       sackctl chaos <policy-file> <fault-spec> [event...]")
	fmt.Fprintln(w, "       sackctl verify <policy-file> [-invariants <file>]")
	fmt.Fprintln(w, "       sackctl bundle push <url> <group> <policy-file> [invariants-file]")
	fmt.Fprintln(w, "       sackctl bundle rollout <url> <group> <policy-file> [-stages 10,50,100]")
	fmt.Fprintln(w, "              [-ring glob] [-min-samples n] [-max-denial-rate r]")
	fmt.Fprintln(w, "              [-max-pinned-frac r] [-invariants file]")
	fmt.Fprintln(w, "       sackctl fleet status <url>")
	fmt.Fprintln(w, "       sackctl fleet rollout <url> <group> {status|tick|abort}")
	fmt.Fprintln(w, "       sackctl example")
}

// reload boots a live system on the old policy, drives the given events
// to move the SSM off its initial state, then commits the new policy
// through the kernel's reload transaction — printing the diff the
// kernel *actually applied* (not merely the requested one), the reload
// status file, and the landing state. A dry run of exactly what a
// production write to the SACKfs policy file would do.
func reload(oldSrc, newSrc string, events []string, stdout, stderr io.Writer) int {
	system, err := sack.New(oldSrc)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: old policy: %v\n", err)
		return 1
	}
	for _, ev := range events {
		if err := system.Events().DeliverEvent(sack.Event(ev)); err != nil {
			fmt.Fprintf(stdout, "event %q: %v\n", ev, err)
		}
	}
	fmt.Fprintf(stdout, "state before reload: %s\n", system.CurrentState().Name)
	report, err := system.Reload(newSrc)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: reload rejected: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "applied: %s\n", report.Summary())
	if !report.Empty() {
		fmt.Fprint(stdout, report.String())
	}
	fmt.Fprintf(stdout, "state after reload: %s\n", system.CurrentState().Name)
	task := system.Kernel.Init()
	fmt.Fprintf(stdout, "\n-- %s --\n%s", sack.ReloadFile, mustRead(task, sack.ReloadFile, stderr))
	return 0
}

// chaos boots the policy with the given fault plan armed, drives the
// events through a heartbeat-emitting SDS (one simulated second per
// event, kernel watchdog ticking), and prints the pipeline health file
// plus the injector's per-target fault tally — a policy's degradation
// behaviour under sensor/transmitter failure, without writing a test.
func chaos(src, spec string, events []string, stdout, stderr io.Writer) int {
	plan, err := sack.ParseFaultSpec(spec, 1)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 2
	}
	if len(events) == 0 {
		events = []string{"crash_detected", "all_clear"}
	}
	system, err := sack.New(src, sack.WithFaultPlan(plan))
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	task := system.Kernel.Init()
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	service, err := system.NewSDSWith(task, clock, nil, sds.WithHeartbeat(500*time.Millisecond))
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	for _, ev := range events {
		if err := service.DeliverEvent(sack.Event(ev)); err != nil {
			fmt.Fprintf(stdout, "event %q: %v\n", ev, err)
		}
		clock.Advance(time.Second)
		if err := service.Flush(); err != nil {
			fmt.Fprintf(stdout, "flush: %v\n", err)
		}
		system.Pipeline().Check(clock.Now())
		fmt.Fprintf(stdout, "event %q: state %s\n", ev, system.CurrentState().Name)
	}
	// Settle past the heartbeat window so a persistently stalled
	// transmitter is seen to lapse (and a recovered one to beat again).
	for end := clock.Now().Add(system.Pipeline().Window() + time.Second); clock.Now().Before(end); {
		clock.Advance(time.Second)
		_ = service.Flush()
		system.Pipeline().Check(clock.Now())
	}
	fmt.Fprintf(stdout, "final state: %s\n", system.CurrentState().Name)
	fmt.Fprintf(stdout, "\n-- %s --\n%s", sack.PipelineFile, mustRead(task, sack.PipelineFile, stderr))
	fmt.Fprintf(stdout, "\n-- fault injector --\n%s", system.Faults.Render())
	return 0
}

// decide boots an independent SACK system on the policy, drives the
// given events to move the SSM, then answers one access-control query
// through the typed decision API — the verdict, the deciding rule, and
// the situation state, with no counter or audit side effects. Exit code
// 0 for allowed, 3 for denied, so scripts can branch on the verdict.
func decide(src, subject, object, ops string, events []string, stdout, stderr io.Writer) int {
	mask, err := sack.ParseAccess(ops)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 2
	}
	if subject == "-" {
		subject = ""
	}
	system, err := sack.New(src)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	for _, ev := range events {
		transitioned, from, to := system.DeliverEvent(sack.Event(ev))
		if transitioned {
			fmt.Fprintf(stdout, "event %q: %s -> %s\n", ev, from.Name, to.Name)
		} else {
			fmt.Fprintf(stdout, "event %q: ignored in state %s\n", ev, from.Name)
		}
	}
	d, err := system.Check(subject, object, mask)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	verdict := "denied"
	if d.Allowed {
		verdict = "allowed"
	}
	fmt.Fprintf(stdout, "%s: %s %s in state %s\n", verdict, ops, object, d.State)
	if d.Rule != nil {
		fmt.Fprintf(stdout, "  rule:   %s\n", d.Rule.String())
	}
	fmt.Fprintf(stdout, "  reason: %s\n", d.Reason)
	if !d.Allowed {
		return 3
	}
	return 0
}

// verifyPolicy runs the symbolic verifier: every invariant in the set
// is checked against the policy's full situation product space (event
// reachability, failsafe degradation, break-glass entries). Exit code 0
// when every invariant holds, 3 when any is violated (each violation
// printed with its witness trace), mirroring `decide`'s allowed/denied
// convention so scripts can branch on the verdict.
func verifyPolicy(src, invSrc string, stdout, stderr io.Writer) int {
	set, err := sack.ParseInvariants(invSrc)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 2
	}
	rep, err := sack.VerifyPolicy(src, set)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, rep.Render())
	if !rep.OK() {
		return 3
	}
	return 0
}

// bundlePush validates the policy locally (fast feedback, same checker
// the server runs) — and, when an invariant set rides along, verifies
// it locally too — then publishes it as the group's next bundle
// generation on a fleetd. The server re-runs the verifier against both
// the embedded set and any group-registered set before accepting.
func bundlePush(url, group, src, invariants string, stdout, stderr io.Writer) int {
	if vr, err := sack.CheckPolicy(src); err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	} else if !vr.OK() {
		for _, issue := range vr.Issues {
			fmt.Fprintln(stderr, issue)
		}
		return 1
	}
	if invariants != "" {
		set, err := sack.ParseInvariants(invariants)
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: %v\n", err)
			return 1
		}
		rep, err := sack.VerifyPolicy(src, set)
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: %v\n", err)
			return 1
		}
		if !rep.OK() {
			fmt.Fprint(stderr, rep.Render())
			return 3
		}
	}
	b, err := fleet.NewClient(url).PushWithInvariants(group, src, invariants)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: push: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "pushed group %s generation %d (%s)\n", b.Group, b.Generation, b.ETag())
	return 0
}

// bundleRollout stages a candidate bundle for the group instead of
// publishing it outright: the plan's widening canary cohorts see it
// first, and the control plane's regression brakes (denial rate,
// failsafe pinning) judge each stage before it advances. The policy is
// checked locally before anything leaves the machine, exactly like
// `bundle push`.
func bundleRollout(url, group, policyFile string, rest []string, stdout, stderr io.Writer, readFile func(string) ([]byte, error)) int {
	fs := flag.NewFlagSet("bundle rollout", flag.ContinueOnError)
	fs.SetOutput(stderr)
	stages := fs.String("stages", "10,50,100", "comma-separated canary percentages, widening order")
	ring := fs.String("ring", "", "vehicle-id glob added to the first stage's cohort")
	minSamples := fs.Uint64("min-samples", 1, "canary decision-log records a stage needs before it is judged")
	maxDenialRate := fs.Float64("max-denial-rate", 0, "halt when the canary denied fraction exceeds this (0 = any denial halts, negative disables)")
	maxPinnedFrac := fs.Float64("max-pinned-frac", 0, "halt when the canary pinned/degraded fraction exceeds this (0 = any pin halts, negative disables)")
	invFile := fs.String("invariants", "", "invariant set file the candidate is verified against before staging")
	if err := fs.Parse(rest); err != nil {
		return 2
	}

	var plan fleet.RolloutPlan
	plan.MinSamples = *minSamples
	plan.MaxDenialRate = *maxDenialRate
	plan.MaxPinnedFrac = *maxPinnedFrac
	for _, part := range strings.Split(*stages, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: -stages wants percentages, got %q\n", part)
			return 2
		}
		plan.Stages = append(plan.Stages, fleet.RolloutStage{Percent: p})
	}
	if *ring != "" && len(plan.Stages) > 0 {
		plan.Stages[0].Ring = *ring
	}

	data, err := readFile(policyFile)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: reading policy: %v\n", err)
		return 1
	}
	src := string(data)
	if vr, err := sack.CheckPolicy(src); err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	} else if !vr.OK() {
		for _, issue := range vr.Issues {
			fmt.Fprintln(stderr, issue)
		}
		return 1
	}
	var invariants string
	if *invFile != "" {
		inv, err := readFile(*invFile)
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: reading invariants: %v\n", err)
			return 1
		}
		invariants = string(inv)
		set, err := sack.ParseInvariants(invariants)
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: %v\n", err)
			return 1
		}
		rep, err := sack.VerifyPolicy(src, set)
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: %v\n", err)
			return 1
		}
		if !rep.OK() {
			fmt.Fprint(stderr, rep.Render())
			return 3
		}
	}

	st, err := fleet.NewClient(url).StartRollout(group, src, invariants, plan)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: rollout: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "staged rollout of group %s: candidate generation %d\n", st.Group, st.CandidateGen)
	fmt.Fprint(stdout, st.Render())
	return 0
}

// fleetRollout inspects or drives an in-flight staged rollout:
// `status` prints the operator view, `tick` judges the current stage
// against the plan's brakes (advancing, promoting, or halting it), and
// `abort` clears the rollout so the group accepts publishes again.
func fleetRollout(url, group string, rest []string, stdout, stderr io.Writer) int {
	verb := "status"
	if len(rest) > 0 {
		verb = rest[0]
	}
	c := fleet.NewClient(url)
	switch verb {
	case "status":
		st, err := c.RolloutStatus(group)
		if err != nil {
			fmt.Fprintf(stderr, "sackctl: rollout status: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, st.Render())
		return 0
	case "tick":
		st, err := c.RolloutTick(group)
		switch {
		case errors.Is(err, fleet.ErrRolloutHalted):
			// The brake fired (now or on an earlier tick): the fleet is
			// pinned to the stable bundle. Report it, distinctly.
			fmt.Fprintf(stdout, "rollout halted: %v\n", err)
			return 3
		case err != nil:
			fmt.Fprintf(stderr, "sackctl: rollout tick: %v\n", err)
			return 1
		case st.Stage >= st.Stages:
			fmt.Fprintf(stdout, "rollout promoted: group %s now at generation %d\n", st.Group, st.StableGen)
			return 0
		}
		fmt.Fprint(stdout, st.Render())
		return 0
	case "abort":
		if err := c.AbortRollout(group); err != nil {
			fmt.Fprintf(stderr, "sackctl: rollout abort: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "rollout aborted: group %s keeps its stable bundle\n", group)
		return 0
	}
	usage(stderr)
	return 2
}

// fleetStatus prints a fleetd's aggregate view: per-group generation
// and convergence, plus the decision-log ingestion counters.
func fleetStatus(url string, stdout, stderr io.Writer) int {
	st, err := fleet.NewClient(url).FleetStatus()
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: fleet status: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, st.Render())
	return 0
}

// mustRead reads a securityfs file for display, reporting (not
// aborting) on error.
func mustRead(task *sack.Task, path string, stderr io.Writer) string {
	out, err := task.ReadFileAll(path)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: reading %s: %v\n", path, err)
		return ""
	}
	return string(out)
}

// metrics boots an independent SACK system on the policy, runs a device
// probe workload in the initial state and after each given event, then
// prints the kernel's hook-latency and AVC-counter view — a quick
// performance profile of a policy without writing a benchmark.
func metrics(src string, events []string, stdout, stderr io.Writer) int {
	system, err := sack.New(src)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	task := system.Kernel.Init()
	probe := func() {
		buf := make([]byte, 8)
		for _, dev := range []string{"door0", "door1", "window0", "window1"} {
			fd, err := task.Open("/dev/vehicle/"+dev, sack.ORdonly, 0)
			if err != nil {
				continue // denied in this state: the denial is the data point
			}
			task.Read(fd, buf)
			task.Ioctl(fd, 1, 0)
			task.Close(fd)
		}
	}
	probe()
	for _, ev := range events {
		transitioned, from, to := system.DeliverEvent(sack.Event(ev))
		if transitioned {
			fmt.Fprintf(stdout, "event %q: %s -> %s\n", ev, from.Name, to.Name)
		} else {
			fmt.Fprintf(stdout, "event %q: ignored in state %s\n", ev, from.Name)
		}
		probe()
	}
	out, err := task.ReadFileAll(sack.MetricsFile)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: reading metrics: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "-- %s --\n%s", sack.MetricsFile, out)
	return 0
}

// diff compiles both policies and prints what a reload would change.
func diff(oldSrc, newSrc string, stdout, stderr io.Writer) int {
	oldC, _, err := policy.Load(oldSrc)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: old policy: %v\n", err)
		return 1
	}
	newC, _, err := policy.Load(newSrc)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: new policy: %v\n", err)
		return 1
	}
	changes := policy.Diff(oldC, newC)
	if len(changes) == 0 {
		fmt.Fprintln(stdout, "policies are equivalent")
		return 0
	}
	fmt.Fprint(stdout, policy.FormatDiff(changes))
	return 0
}

// simulate dry-runs the situation state machine over an event sequence,
// printing each step and the permissions active afterwards.
func simulate(src string, events []string, stdout, stderr io.Writer) int {
	c, vr, err := policy.Load(src)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	for _, w := range vr.Warnings() {
		fmt.Fprintln(stderr, w)
	}
	states := make([]ssm.State, len(c.States))
	for i, st := range c.States {
		states[i] = ssm.State{Name: st.Name, Encoding: st.Encoding}
	}
	transitions := make([]ssm.Transition, len(c.Transitions))
	for i, t := range c.Transitions {
		transitions[i] = ssm.Transition{From: t.From, Event: ssm.Event(t.Event), To: t.To}
	}
	m, err := ssm.New(ssm.Config{States: states, Initial: c.Initial, Transitions: transitions})
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	printState := func() {
		st := m.Current()
		perms := append([]string(nil), c.StatePerms[st.Name]...)
		sort.Strings(perms)
		fmt.Fprintf(stdout, "  state=%s permissions=[%s] rules=%d\n",
			st.Name, strings.Join(perms, ","), c.StateSets[st.Name].Len())
	}
	fmt.Fprintln(stdout, "initial:")
	printState()
	for _, ev := range events {
		transitioned, from, to := m.Deliver(ssm.Event(ev))
		if transitioned {
			fmt.Fprintf(stdout, "event %q: %s -> %s\n", ev, from.Name, to.Name)
		} else {
			fmt.Fprintf(stdout, "event %q: ignored in state %s\n", ev, from.Name)
		}
		printState()
	}
	return 0
}

func check(src string, stdout, stderr io.Writer) int {
	f, err := policy.Parse(src)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	vr := policy.Validate(f)
	for _, issue := range vr.Issues {
		fmt.Fprintln(stdout, issue)
	}
	if !vr.OK() {
		return 1
	}
	fmt.Fprintf(stdout, "OK: %d states, %d permissions, %d transitions, %d warnings\n",
		len(f.States), len(f.Permissions), len(f.Transitions), len(vr.Warnings()))
	return 0
}

func compile(src string, stdout, stderr io.Writer) int {
	c, vr, err := policy.Load(src)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	for _, w := range vr.Warnings() {
		fmt.Fprintln(stderr, w)
	}
	fmt.Fprintf(stdout, "initial state: %s\n\n", c.Initial)
	fmt.Fprintln(stdout, "states:")
	for _, st := range c.States {
		marks := ""
		if st.Name == c.Initial {
			marks = "  (initial)"
		}
		fmt.Fprintf(stdout, "  %-24s encoding=%d%s\n", st.Name, st.Encoding, marks)
		perms := c.StatePerms[st.Name]
		sort.Strings(perms)
		fmt.Fprintf(stdout, "    permissions: %s\n", strings.Join(perms, ", "))
		rs := c.StateSets[st.Name]
		for _, r := range rs.Rules() {
			fmt.Fprintf(stdout, "    rule: %s\n", r.String())
		}
	}
	fmt.Fprintln(stdout, "\ntransitions:")
	for _, t := range c.Transitions {
		fmt.Fprintf(stdout, "  %s -> %s on %s\n", t.From, t.To, t.Event)
	}
	fmt.Fprintf(stdout, "\ncoverage: %d patterns\n", c.Coverage.NumPatterns())
	return 0
}

func format(src string, stdout, stderr io.Writer) int {
	f, err := policy.Parse(src)
	if err != nil {
		fmt.Fprintf(stderr, "sackctl: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, policy.Format(f))
	return 0
}
