package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// runWith builds a runConfig over the given output buffer.
func runWith(out *bytes.Buffer, mutate func(*runConfig)) int {
	cfg := runConfig{trace: "city-crash", stdout: out}
	if mutate != nil {
		mutate(&cfg)
	}
	return run(cfg)
}

func TestRunCityCrashTrace(t *testing.T) {
	var out bytes.Buffer
	if code := runWith(&out, nil); code != 0 {
		t.Fatalf("exit %d", code)
	}
	text := out.String()
	for _, frag := range []string{
		"city-drive-with-crash",
		"[driving_started",
		"[crash_detected",
		"emergency (3)",
		"SSM:",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("output missing %q:\n%s", frag, text)
		}
	}
}

func TestRunParkTrace(t *testing.T) {
	var out bytes.Buffer
	if code := runWith(&out, func(c *runConfig) { c.trace = "park" }); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "parking_without_driver") {
		t.Errorf("park trace never left the driver:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if code := runWith(&out, func(c *runConfig) { c.trace = "no-such-trace" }); code != 2 {
		t.Errorf("unknown trace exit = %d", code)
	}
	if code := runWith(&out, func(c *runConfig) {
		c.trace, c.policy = "park", "/missing"
		c.readFile = func(string) ([]byte, error) { return nil, errors.New("nope") }
	}); code != 1 {
		t.Errorf("unreadable policy exit = %d", code)
	}
	if code := runWith(&out, func(c *runConfig) {
		c.trace, c.policy = "park", "/bad"
		c.readFile = func(string) ([]byte, error) { return []byte("states {"), nil }
	}); code != 1 {
		t.Errorf("bad policy exit = %d", code)
	}
	if code := runWith(&out, func(c *runConfig) { c.faults = "explode:transmitter" }); code != 2 {
		t.Errorf("bad fault spec exit = %d", code)
	}
	if code := runWith(&out, func(c *runConfig) { c.failsafe = "no_such_state" }); code != 1 {
		t.Errorf("undeclared failsafe exit = %d", code)
	}
}

func TestRunMetricsView(t *testing.T) {
	var out bytes.Buffer
	if code := runWith(&out, func(c *runConfig) { c.metrics = true }); code != 0 {
		t.Fatalf("exit %d", code)
	}
	text := out.String()
	for _, frag := range []string{
		"/sys/kernel/security/sack/metrics",
		"hook inode_permission",
		"avc sack",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("metrics output missing %q:\n%s", frag, text)
		}
	}
}

func TestRunPipelineView(t *testing.T) {
	var out bytes.Buffer
	if code := runWith(&out, func(c *runConfig) {
		c.pipeline = true
		c.heartbeat = 2 * time.Second
	}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	text := out.String()
	for _, frag := range []string{
		"/sys/kernel/security/sack/pipeline",
		"degraded: false",
		"heartbeat_armed: true",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("pipeline output missing %q:\n%s", frag, text)
		}
	}
}

func TestRunStalledTransmitterDegrades(t *testing.T) {
	var out bytes.Buffer
	if code := runWith(&out, func(c *runConfig) {
		c.pipeline = true
		c.heartbeat = time.Second
		c.failsafe = "emergency"
		c.faults = "stall:transmitter:after=3"
		c.faultSeed = 7
	}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	text := out.String()
	for _, frag := range []string{
		"!! poll:",
		"degraded: true",
		"reason: heartbeat_lapse",
		"failsafe_state: emergency",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("degraded run missing %q:\n%s", frag, text)
		}
	}
}
