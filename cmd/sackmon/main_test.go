package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRunCityCrashTrace(t *testing.T) {
	var out bytes.Buffer
	if code := run("city-crash", "", false, &out, nil); code != 0 {
		t.Fatalf("exit %d", code)
	}
	text := out.String()
	for _, frag := range []string{
		"city-drive-with-crash",
		"[driving_started",
		"[crash_detected",
		"emergency (3)",
		"SSM:",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("output missing %q:\n%s", frag, text)
		}
	}
}

func TestRunParkTrace(t *testing.T) {
	var out bytes.Buffer
	if code := run("park", "", false, &out, nil); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "parking_without_driver") {
		t.Errorf("park trace never left the driver:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if code := run("no-such-trace", "", false, &out, nil); code != 2 {
		t.Errorf("unknown trace exit = %d", code)
	}
	readFail := func(string) ([]byte, error) { return nil, errors.New("nope") }
	if code := run("park", "/missing", false, &out, readFail); code != 1 {
		t.Errorf("unreadable policy exit = %d", code)
	}
	badPolicy := func(string) ([]byte, error) { return []byte("states {"), nil }
	if code := run("park", "/bad", false, &out, badPolicy); code != 1 {
		t.Errorf("bad policy exit = %d", code)
	}
}

func TestRunMetricsView(t *testing.T) {
	var out bytes.Buffer
	if code := run("city-crash", "", true, &out, nil); code != 0 {
		t.Fatalf("exit %d", code)
	}
	text := out.String()
	for _, frag := range []string{
		"/sys/kernel/security/sack/metrics",
		"hook inode_permission",
		"avc sack",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("metrics output missing %q:\n%s", frag, text)
		}
	}
}
