// sackmon runs the situation detection service against a scripted drive
// trace and prints every sensor-driven situation transition along with
// the kernel's view of the state — a monitoring/debugging aid for SACK
// deployments.
//
// Usage:
//
//	sackmon [-trace city-crash|highway|park] [-policy <file>] [-metrics]
//	        [-pipeline] [-faults <spec>] [-fault-seed <n>]
//	        [-failsafe <state>] [-heartbeat <dur>]
//	        [-fleet <url>] [-fleet-group <g>] [-fleet-vehicle <id>]
//	        [-fleet-key id=hexsecret]
//
// -faults arms deterministic fault injection (see sack.ParseFaultSpec
// for the spec grammar); -pipeline prints the kernel's pipeline health
// file after the run; -heartbeat makes the SDS emit heartbeats and
// ticks the kernel watchdog every trace point, so a stalled transmitter
// degrades the SSM to the policy's (or -failsafe's) fail-safe state.
//
// -fleet points at a fleetd and prints its aggregate fleet view after
// the run. With -fleet-group the monitored vehicle additionally joins
// the fleet as an agent: it pulls the group's current bundle before the
// trace (the bundle replaces -policy / the built-in policy through the
// reload transaction) and ships its status and audit records upstream
// after the trace, so it appears in the printed view. -fleet-key pins
// the agent to a fleetd signing key: bundles whose detached signature
// does not verify against it (unsigned ones included) are refused
// before the reload and the agent keeps its running policy.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	sack "repro"
	"repro/internal/fleet"
	"repro/internal/resilience"
	"repro/internal/sds"
	"repro/internal/sign"
	"repro/internal/trace"
)

const defaultPolicy = `
states {
  parking_with_driver = 0
  parking_without_driver = 1
  driving = 2
  emergency = 3
}

initial parking_with_driver

permissions {
  DEVICE_READ
  CONTROL_CAR_DOORS
}

state_per {
  parking_with_driver:    DEVICE_READ, CONTROL_CAR_DOORS
  parking_without_driver: DEVICE_READ
  driving:                DEVICE_READ
  emergency:              DEVICE_READ, CONTROL_CAR_DOORS
}

per_rules {
  DEVICE_READ {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
  }
}

transitions {
  parking_with_driver -> driving on driving_started
  driving -> parking_with_driver on driving_stopped
  parking_with_driver -> parking_without_driver on parked_without_driver
  parking_without_driver -> parking_with_driver on parked_with_driver
  driving -> emergency on crash_detected
  emergency -> parking_with_driver on all_clear
}
`

// runConfig carries the flag values into the testable entry point.
type runConfig struct {
	trace     string
	policy    string // policy file path; "" selects the built-in policy
	metrics   bool
	pipeline  bool          // print the pipeline health file after the run
	faults    string        // fault-plan spec; "" disables injection
	faultSeed int64         // deterministic seed for the fault plan
	failsafe  string        // fail-safe state override; "" keeps the policy's
	heartbeat time.Duration // SDS heartbeat interval; 0 disables

	fleetURL     string // fleetd base URL; "" disables the fleet view
	fleetGroup   string // with fleetURL: join this group as an agent
	fleetVehicle string // agent vehicle id (default "sackmon")
	fleetKey     string // id=hexsecret: only apply bundles signed by this key

	stdout   io.Writer
	readFile func(string) ([]byte, error)
}

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.trace, "trace", "city-crash", "drive trace: city-crash, highway, or park")
	flag.StringVar(&cfg.policy, "policy", "", "SACK policy file (default: built-in 4-state policy)")
	flag.BoolVar(&cfg.metrics, "metrics", false, "print the kernel hook/AVC metrics view after the run")
	flag.BoolVar(&cfg.pipeline, "pipeline", false, "print the kernel pipeline health view after the run")
	flag.StringVar(&cfg.faults, "faults", "", "fault-plan spec, e.g. stall:transmitter:after=10:for=5")
	flag.Int64Var(&cfg.faultSeed, "fault-seed", 1, "deterministic seed for the fault plan")
	flag.StringVar(&cfg.failsafe, "failsafe", "", "fail-safe state override (default: the policy's failsafe)")
	flag.DurationVar(&cfg.heartbeat, "heartbeat", 0, "SDS heartbeat interval (0 disables; enables the kernel watchdog)")
	flag.StringVar(&cfg.fleetURL, "fleet", "", "fleetd base URL; print its fleet view after the run")
	flag.StringVar(&cfg.fleetGroup, "fleet-group", "", "join this fleet group as an agent (requires -fleet)")
	flag.StringVar(&cfg.fleetVehicle, "fleet-vehicle", "sackmon", "vehicle id to join the fleet as")
	flag.StringVar(&cfg.fleetKey, "fleet-key", "", "id=hexsecret HMAC key; refuse fleet bundles that do not verify against it")
	flag.Parse()
	cfg.stdout, cfg.readFile = os.Stdout, os.ReadFile
	os.Exit(run(cfg))
}

// run is the testable entry point; it returns the process exit code.
func run(cfg runConfig) int {
	stdout := cfg.stdout
	policyText := defaultPolicy
	if cfg.policy != "" {
		data, err := cfg.readFile(cfg.policy)
		if err != nil {
			log.Printf("sackmon: %v", err)
			return 1
		}
		policyText = string(data)
	}

	var tr trace.Trace
	switch cfg.trace {
	case "city-crash":
		tr = trace.CityDriveWithCrash()
	case "highway":
		tr = trace.HighwayDrive()
	case "park":
		tr = trace.ParkAndLeave()
	default:
		log.Printf("sackmon: unknown trace %q", cfg.trace)
		return 2
	}

	opts := []sack.Option{sack.WithMode(sack.Independent)}
	if cfg.faults != "" {
		plan, err := sack.ParseFaultSpec(cfg.faults, cfg.faultSeed)
		if err != nil {
			log.Printf("sackmon: %v", err)
			return 2
		}
		opts = append(opts, sack.WithFaultPlan(plan))
	}
	if cfg.failsafe != "" {
		opts = append(opts, sack.WithFailsafe(cfg.failsafe))
	}
	if cfg.fleetGroup != "" {
		if cfg.fleetURL == "" {
			log.Printf("sackmon: -fleet-group requires -fleet")
			return 2
		}
		vehicleID := cfg.fleetVehicle
		if vehicleID == "" {
			vehicleID = "sackmon"
		}
		var keyring *sign.Keyring
		if cfg.fleetKey != "" {
			id, hexSecret, ok := strings.Cut(cfg.fleetKey, "=")
			if !ok || id == "" || hexSecret == "" {
				log.Printf("sackmon: -fleet-key wants id=hexsecret, got %q", cfg.fleetKey)
				return 2
			}
			secret, err := hex.DecodeString(hexSecret)
			if err != nil {
				log.Printf("sackmon: -fleet-key secret is not hex: %v", err)
				return 2
			}
			_, verifier := sign.NewHMAC(id, secret)
			keyring = sign.NewKeyring(verifier)
		}
		// The monitoring agent runs the full default stack (retry,
		// breaker, timeout, cached-bundle fallback) so its policy
		// stats below show real breaker state against a flaky fleetd.
		opts = append(opts, sack.WithFleet(sack.FleetAgentConfig{
			Vehicle:   vehicleID,
			Group:     cfg.fleetGroup,
			Transport: sack.NewFleetClient(cfg.fleetURL),
			PollWait:  time.Millisecond,
			Keyring:   keyring,
		}, fleet.WithDefaultResilience()))
	}
	sys, err := sack.New(policyText, opts...)
	if err != nil {
		log.Printf("sackmon: %v", err)
		return 1
	}
	root := sys.Kernel.Init()

	if sys.Fleet != nil {
		// Converge on the group's bundle before driving: the download
		// replaces the boot policy through the reload transaction.
		if err := sys.Fleet.SyncOnce(); err != nil {
			log.Printf("sackmon: fleet sync: %v", err)
			return 1
		}
		fmt.Fprintf(stdout, "fleet: %s joined group %s at generation %d\n",
			cfg.fleetVehicle, cfg.fleetGroup, sys.Fleet.AppliedGeneration())
	}

	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	detectors := []sds.Detector{
		sds.DrivingDetector(),
		sds.CrashDetector(8.0),
		sds.AllClearDetector(8.0),
		sds.ParkingDetector(),
		sds.SpeedBandDetector(100),
	}
	var sdsOpts []sack.SDSOption
	if cfg.heartbeat > 0 {
		sdsOpts = append(sdsOpts, sds.WithHeartbeat(cfg.heartbeat))
	}
	service, err := sys.NewSDSWith(root, clock, detectors, sdsOpts...)
	if err != nil {
		log.Printf("sackmon: %v", err)
		return 1
	}

	fmt.Fprintf(stdout, "== sackmon: trace %q ==\n", tr.Name)
	fmt.Fprintf(stdout, "%-10s %-8s %-7s %-7s %-28s %s\n", "time", "speed", "accel", "drv/ign", "events", "kernel state")
	var prev time.Duration
	for _, p := range tr.Points {
		if p.T > prev {
			clock.Advance(p.T - prev)
			prev = p.T
		}
		trace.Apply(p, sys.Vehicle.Dynamics)
		events, err := service.Poll()
		if err != nil && cfg.faults == "" {
			log.Printf("sackmon: poll: %v", err)
			return 1
		}
		if err != nil {
			// Injected faults make delivery fail transiently; the SDS
			// retries with backoff, so report and keep driving.
			fmt.Fprintf(stdout, "!! poll: %v\n", err)
		}
		sys.Pipeline().Check(clock.Now())
		di := fmt.Sprintf("%v/%v", b2i(p.Driver), b2i(p.Ignition))
		stateLine, err := root.ReadFileAll("/sys/kernel/security/SACK/state")
		if err != nil {
			log.Printf("sackmon: state read: %v", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-10s %-8.1f %-7.1f %-7s %-28v %s", p.T, p.Speed, p.AccelG, di, events, stateLine)
	}

	transitions, ignored := sys.SACK.Machine().Stats()
	fmt.Fprintf(stdout, "\nSSM: %d transitions, %d ignored events, %d polls\n",
		transitions, ignored, service.Polls())

	if cfg.metrics {
		out, err := root.ReadFileAll(sack.MetricsFile)
		if err != nil {
			log.Printf("sackmon: metrics read: %v", err)
			return 1
		}
		fmt.Fprintf(stdout, "\n-- %s --\n%s", sack.MetricsFile, out)
	}
	if cfg.pipeline {
		out, err := root.ReadFileAll(sack.PipelineFile)
		if err != nil {
			log.Printf("sackmon: pipeline read: %v", err)
			return 1
		}
		fmt.Fprintf(stdout, "\n-- %s --\n%s", sack.PipelineFile, out)
	}
	if cfg.fleetURL != "" {
		if sys.Fleet != nil {
			// Ship the run's audit records and final status upstream so
			// the view below includes this vehicle.
			if err := sys.Fleet.SyncOnce(); err != nil {
				fmt.Fprintf(stdout, "!! fleet sync: %v\n", err)
			}
		}
		st, err := sack.NewFleetClient(cfg.fleetURL).FleetStatus()
		if err != nil {
			log.Printf("sackmon: fleet status: %v", err)
			return 1
		}
		fmt.Fprintf(stdout, "\n-- fleet %s --\n%s", cfg.fleetURL, st.Render())
		if sys.Fleet != nil {
			fmt.Fprintf(stdout, "-- agent policy --\n%s",
				resilience.Render(resilience.StatsOf(sys.Fleet.Policy())))
		}
	}
	return 0
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
