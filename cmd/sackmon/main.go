// sackmon runs the situation detection service against a scripted drive
// trace and prints every sensor-driven situation transition along with
// the kernel's view of the state — a monitoring/debugging aid for SACK
// deployments.
//
// Usage:
//
//	sackmon [-trace city-crash|highway|park] [-policy <file>] [-metrics]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	sack "repro"
	"repro/internal/sds"
	"repro/internal/trace"
)

const defaultPolicy = `
states {
  parking_with_driver = 0
  parking_without_driver = 1
  driving = 2
  emergency = 3
}

initial parking_with_driver

permissions {
  DEVICE_READ
  CONTROL_CAR_DOORS
}

state_per {
  parking_with_driver:    DEVICE_READ, CONTROL_CAR_DOORS
  parking_without_driver: DEVICE_READ
  driving:                DEVICE_READ
  emergency:              DEVICE_READ, CONTROL_CAR_DOORS
}

per_rules {
  DEVICE_READ {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
  }
}

transitions {
  parking_with_driver -> driving on driving_started
  driving -> parking_with_driver on driving_stopped
  parking_with_driver -> parking_without_driver on parked_without_driver
  parking_without_driver -> parking_with_driver on parked_with_driver
  driving -> emergency on crash_detected
  emergency -> parking_with_driver on all_clear
}
`

func main() {
	traceName := flag.String("trace", "city-crash", "drive trace: city-crash, highway, or park")
	policyPath := flag.String("policy", "", "SACK policy file (default: built-in 4-state policy)")
	showMetrics := flag.Bool("metrics", false, "print the kernel hook/AVC metrics view after the run")
	flag.Parse()
	os.Exit(run(*traceName, *policyPath, *showMetrics, os.Stdout, os.ReadFile))
}

// run is the testable entry point; it returns the process exit code.
func run(traceName, policyPath string, showMetrics bool, stdout io.Writer, readFile func(string) ([]byte, error)) int {
	policyText := defaultPolicy
	if policyPath != "" {
		data, err := readFile(policyPath)
		if err != nil {
			log.Printf("sackmon: %v", err)
			return 1
		}
		policyText = string(data)
	}

	var tr trace.Trace
	switch traceName {
	case "city-crash":
		tr = trace.CityDriveWithCrash()
	case "highway":
		tr = trace.HighwayDrive()
	case "park":
		tr = trace.ParkAndLeave()
	default:
		log.Printf("sackmon: unknown trace %q", traceName)
		return 2
	}

	sys, err := sack.New(policyText, sack.WithMode(sack.Independent))
	if err != nil {
		log.Printf("sackmon: %v", err)
		return 1
	}
	root := sys.Kernel.Init()

	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	service, err := sys.NewSDS(root, clock,
		sds.DrivingDetector(),
		sds.CrashDetector(8.0),
		sds.AllClearDetector(8.0),
		sds.ParkingDetector(),
		sds.SpeedBandDetector(100),
	)
	if err != nil {
		log.Printf("sackmon: %v", err)
		return 1
	}

	fmt.Fprintf(stdout, "== sackmon: trace %q ==\n", tr.Name)
	fmt.Fprintf(stdout, "%-10s %-8s %-7s %-7s %-28s %s\n", "time", "speed", "accel", "drv/ign", "events", "kernel state")
	var prev time.Duration
	for _, p := range tr.Points {
		if p.T > prev {
			clock.Advance(p.T - prev)
			prev = p.T
		}
		trace.Apply(p, sys.Vehicle.Dynamics)
		events, err := service.Poll()
		if err != nil {
			log.Printf("sackmon: poll: %v", err)
			return 1
		}
		di := fmt.Sprintf("%v/%v", b2i(p.Driver), b2i(p.Ignition))
		stateLine, err := root.ReadFileAll("/sys/kernel/security/SACK/state")
		if err != nil {
			log.Printf("sackmon: state read: %v", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-10s %-8.1f %-7.1f %-7s %-28v %s", p.T, p.Speed, p.AccelG, di, events, stateLine)
	}

	transitions, ignored := sys.SACK.Machine().Stats()
	fmt.Fprintf(stdout, "\nSSM: %d transitions, %d ignored events, %d polls\n",
		transitions, ignored, service.Polls())

	if showMetrics {
		out, err := root.ReadFileAll(sack.MetricsFile)
		if err != nil {
			log.Printf("sackmon: metrics read: %v", err)
			return 1
		}
		fmt.Fprintf(stdout, "\n-- %s --\n%s", sack.MetricsFile, out)
	}
	return 0
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
