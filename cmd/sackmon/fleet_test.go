package main

import (
	"bytes"
	"encoding/hex"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/sign"
)

// TestRunFleetView drives the city-crash trace as a fleet member: the
// vehicle pulls its policy from a fleetd (replacing the built-in one),
// ships status and audit records after the run, and the fleet view
// shows it converged.
func TestRunFleetView(t *testing.T) {
	srv := fleet.NewServer()
	if _, err := srv.Publish("city", defaultPolicy); err != nil {
		t.Fatalf("publish: %v", err)
	}
	hs := httptest.NewServer(fleet.Handler(srv))
	defer hs.Close()

	var out bytes.Buffer
	code := runWith(&out, func(c *runConfig) {
		c.fleetURL = hs.URL
		c.fleetGroup = "city"
		c.fleetVehicle = "veh-mon"
	})
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	text := out.String()
	for _, frag := range []string{
		"fleet: veh-mon joined group city at generation 1",
		"emergency (3)", // the trace still drives the pulled policy
		"-- fleet " + hs.URL + " --",
		"group city: generation=1",
		"converged=1",
		"wire_ingest: json_batches=",
		"wire_fanout: full_pulls=",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("output missing %q:\n%s", frag, text)
		}
	}

	v, ok := srv.Vehicle("veh-mon")
	if !ok {
		t.Fatal("vehicle never reported status")
	}
	if v.AppliedGeneration != 1 {
		t.Fatalf("vehicle state: %+v", v)
	}
	if v.Uploaded+v.Dropped != v.Emitted {
		t.Fatalf("ledger not exact: %+v", v)
	}
	// The monitor speaks the binary log encoding by default and says so
	// in its status report.
	if v.WireEncoding != "binary" || (v.Uploaded > 0 && v.WireBytesOut == 0) {
		t.Fatalf("wire accounting not reported: %+v", v)
	}
}

func TestFleetGroupRequiresFleetURL(t *testing.T) {
	var out bytes.Buffer
	if code := runWith(&out, func(c *runConfig) { c.fleetGroup = "city" }); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRunFleetKey: with -fleet-key the agent only applies bundles that
// verify against the key. Matching key → normal run; wrong key →
// refusal before the reload, not a silent downgrade.
func TestRunFleetKey(t *testing.T) {
	signer, _ := sign.NewHMAC("k1", []byte("0123456789abcdef0123456789abcdef"))
	srv := fleet.NewServer(fleet.WithBundleSigner(signer))
	if _, err := srv.Publish("city", defaultPolicy); err != nil {
		t.Fatalf("publish: %v", err)
	}
	hs := httptest.NewServer(fleet.Handler(srv))
	defer hs.Close()

	keyHex := hex.EncodeToString([]byte("0123456789abcdef0123456789abcdef"))
	var out bytes.Buffer
	code := runWith(&out, func(c *runConfig) {
		c.fleetURL = hs.URL
		c.fleetGroup = "city"
		c.fleetVehicle = "veh-keyed"
		c.fleetKey = "k1=" + keyHex
	})
	if code != 0 {
		t.Fatalf("matching key: exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "joined group city at generation 1") {
		t.Fatalf("keyed agent never converged:\n%s", out.String())
	}

	// Wrong secret: the bundle must be refused, and the run fail loudly.
	out.Reset()
	wrongHex := hex.EncodeToString([]byte("ffffffffffffffffffffffffffffffff"))
	code = runWith(&out, func(c *runConfig) {
		c.fleetURL = hs.URL
		c.fleetGroup = "city"
		c.fleetVehicle = "veh-badkey"
		c.fleetKey = "k1=" + wrongHex
	})
	if code == 0 {
		t.Fatalf("bad key applied the bundle:\n%s", out.String())
	}

	// Malformed flag shapes are usage errors.
	if code := runWith(&out, func(c *runConfig) {
		c.fleetURL = hs.URL
		c.fleetGroup = "city"
		c.fleetKey = "nosecret"
	}); code != 2 {
		t.Fatalf("bare -fleet-key: exit %d", code)
	}
}
