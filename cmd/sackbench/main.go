// sackbench regenerates every table and figure of the paper's
// evaluation (§IV) against the simulated kernel.
//
// Usage:
//
//	sackbench -table 2          Table II  (LMBench, 3 configurations)
//	sackbench -table 3          Table III (overhead vs. #SACK rules)
//	sackbench -fig 3a           Fig. 3(a) (overhead vs. #situation states)
//	sackbench -fig 3b           Fig. 3(b) (overhead vs. transition period)
//	sackbench -latency          §IV-B situation awareness latency
//	sackbench -scale            decision throughput vs. goroutine count
//	sackbench -ablation         uncached verdict: glob walk vs trie × AVC
//	sackbench -matcher walk     force the glob-walk engine in -scale
//	sackbench -all              everything
//	sackbench -quick            reduce iteration counts (CI-sized run)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "regenerate a table (2 or 3)")
	fig := flag.String("fig", "", "regenerate a figure (3a or 3b)")
	latency := flag.Bool("latency", false, "measure situation awareness latency")
	riscv := flag.Bool("riscv", false, "no-LSM vs independent SACK file read/write comparison")
	scale := flag.Bool("scale", false, "decision throughput vs. goroutine count (lock-free read side)")
	ablation := flag.Bool("ablation", false, "uncached decision cost: glob walk vs trie matcher, AVC off/on")
	matcher := flag.String("matcher", "trie", "decision engine for -scale: trie or walk")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "smaller iteration counts")
	repeats := flag.Int("repeats", 1, "median-of-N repetitions for tables")
	flag.Parse()

	if *matcher != "trie" && *matcher != "walk" {
		fmt.Fprintf(os.Stderr, "sackbench: -matcher must be trie or walk, got %q\n", *matcher)
		os.Exit(2)
	}

	opts := bench.Options{Repeats: *repeats}
	if *quick {
		opts.Iterations = 200
		opts.MoveBytes = 2 << 20
	}

	ran := false
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "sackbench: %v\n", err)
		os.Exit(1)
	}

	if *all || *table == 2 {
		ran = true
		t, err := bench.RunTable2(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Format())
		fmt.Printf("mean |overhead| vs baseline: SACK-enhanced %.2f%%, independent %.2f%%\n\n",
			t.MeanAbsOverheadPct(1), t.MeanAbsOverheadPct(2))
	}
	if *all || *table == 3 {
		ran = true
		t, err := bench.RunTable3(nil, opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(t.Format())
		fmt.Println()
	}
	if *all || *fig == "3a" {
		ran = true
		f, err := bench.RunFig3a(nil, opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Format())
		fmt.Println()
	}
	if *all || *fig == "3b" {
		ran = true
		periods := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second}
		if *quick {
			periods = []time.Duration{10 * time.Millisecond, 100 * time.Millisecond}
		}
		f, err := bench.RunFig3b(periods, opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(f.Format())
		fmt.Println()
	}
	if *all || *latency {
		ran = true
		events := 10000
		if *quick {
			events = 1000
		}
		res, err := bench.RunLatency(events)
		if err != nil {
			fail(err)
		}
		fmt.Println("Situation awareness latency (securityfs event path):")
		fmt.Printf("  %s\n", res)
	}
	if *all || *riscv {
		ran = true
		res, err := bench.RunRISCVComparison(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println("No-LSM baseline vs independent SACK (the paper's VisionFive2 experiment):")
		fmt.Printf("  file read:  %.6f ms -> %.6f ms (%+.2f%%)\n", res.BaseReadMs, res.SACKReadMs, res.ReadOverheadPct)
		fmt.Printf("  file write: %.6f ms -> %.6f ms (%+.2f%%)\n", res.BaseWriteMs, res.SACKWriteMs, res.WriteOverheadPct)
	}
	if *all || *scale {
		ran = true
		so := bench.ScaleOptions{DisableMatcher: *matcher == "walk"}
		if *quick {
			so.Goroutines = []int{1, 4, 16}
			so.OpsPerG = 20000
		}
		res, err := bench.RunScale(so)
		if err != nil {
			fail(err)
		}
		fmt.Printf("decision engine: %s\n", *matcher)
		fmt.Println(res.Format())
	}
	if *all || *ablation {
		ran = true
		ao := bench.MatcherAblationOptions{}
		if *quick {
			ao.Iterations = 2000
		}
		res, err := bench.RunMatcherAblation(ao)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Format())
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
