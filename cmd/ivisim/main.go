// ivisim is the IVI emulator demo binary: it boots the full stack
// (kernel, SACK, vehicle, IVI apps and services), replays a drive trace
// through the situation detection service, launches KOFFEE-style
// injection attacks at each phase, and prints a timeline of outcomes.
//
// Usage:
//
//	ivisim                   run with SACK protection (independent mode)
//	ivisim -nosack           run the unprotected baseline
//	ivisim -faults <spec>    arm deterministic fault injection; CAN-bus
//	                         rules (e.g. "drop:canbus:p=0.3") strike the
//	                         vehicle bus tap, sensor/transmitter rules
//	                         strike the SDS; the per-target tally prints
//	                         after the run
//	ivisim -fault-seed <n>   deterministic seed for -faults (default 1)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	sack "repro"
	"repro/internal/ivi"
	"repro/internal/kernel"
	"repro/internal/lsm"
	"repro/internal/sds"
	"repro/internal/trace"
	"repro/internal/vehicle"
)

const policyText = `
states {
  parking = 0
  driving = 1
  emergency = 2
}

initial parking

permissions {
  DEVICE_READ
  CONTROL_CAR_DOORS
}

state_per {
  parking:   DEVICE_READ
  driving:   DEVICE_READ
  emergency: DEVICE_READ, CONTROL_CAR_DOORS
}

per_rules {
  DEVICE_READ {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
    allow read,write,ioctl /dev/vehicle/window*
  }
}

transitions {
  parking -> driving on driving_started
  driving -> parking on driving_stopped
  driving -> emergency on crash_detected
  emergency -> parking on all_clear
}
`

func main() {
	nosack := flag.Bool("nosack", false, "run without SACK (vulnerable baseline)")
	faultSpec := flag.String("faults", "", "fault-plan spec, e.g. drop:canbus:p=0.3 (see sackctl chaos)")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for -faults")
	flag.Parse()
	if err := run(*nosack, *faultSpec, *faultSeed, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point.
func run(nosack bool, faultSpec string, faultSeed int64, stdout io.Writer) error {
	var (
		k   *kernel.Kernel
		v   *vehicle.Vehicle
		sys *sack.System
		inj *sack.FaultInjector
	)
	var plan *sack.FaultPlan
	if faultSpec != "" {
		var err error
		plan, err = sack.ParseFaultSpec(faultSpec, faultSeed)
		if err != nil {
			return err
		}
	}
	if nosack {
		k = kernel.New()
		if err := k.RegisterLSM(lsm.NewCapability()); err != nil {
			return err
		}
		v = vehicle.New(4, 4)
		if err := v.RegisterDevices(k); err != nil {
			return err
		}
		if plan != nil {
			// No SACK boot to arm the tap for us: wire the injector onto
			// the bus directly so the baseline sees the same CAN chaos.
			inj = sack.NewFaultInjector(plan)
			v.Bus.SetTap(vehicle.FaultTap(inj))
		}
		fmt.Fprintln(stdout, "== ivisim (UNPROTECTED baseline) ==")
	} else {
		var err error
		opts := []sack.Option{sack.WithMode(sack.Independent)}
		if plan != nil {
			opts = append(opts, sack.WithFaultPlan(plan))
		}
		sys, err = sack.New(policyText, opts...)
		if err != nil {
			return err
		}
		k, v, inj = sys.Kernel, sys.Vehicle, sys.Faults
		fmt.Fprintln(stdout, "== ivisim (SACK protected) ==")
	}
	fmt.Fprintf(stdout, "LSM stack: %s\n\n", k.LSM)

	// IVI layer: door service + a radio app without door permissions.
	iviSys := ivi.NewSystem(k, v)
	if _, err := iviSys.NewDoorService(); err != nil {
		return err
	}
	radio, err := iviSys.InstallApp("radio", ivi.PermAudioControl)
	if err != nil {
		return err
	}
	attack := ivi.KoffeeAttack{App: radio}

	// SDS wiring (only meaningful with SACK; harmless without).
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	var service *sds.Service
	if sys != nil {
		service, err = sys.NewSDS(k.Init(), clock,
			sds.DrivingDetector(), sds.CrashDetector(8.0), sds.AllClearDetector(8.0))
		if err != nil {
			return err
		}
	} else {
		service = sds.NewService(clock, sds.VehicleSensors(v.Dynamics),
			[]sds.Detector{sds.DrivingDetector(), sds.CrashDetector(8.0)},
			sds.TransmitterFunc(func([]string) error { return nil }))
	}

	stateName := func() string {
		if sys == nil {
			return "n/a"
		}
		return sys.CurrentState().Name
	}

	fmt.Fprintf(stdout, "%-10s %-24s %-12s %s\n", "time", "events", "state", "attack outcome")
	var prev time.Duration
	for _, p := range trace.CityDriveWithCrash().Points {
		if p.T > prev {
			clock.Advance(p.T - prev)
			prev = p.T
		}
		trace.Apply(p, v.Dynamics)
		events, err := service.Poll()
		if err != nil {
			if plan == nil {
				return err
			}
			// Injected faults make delivery fail transiently; the SDS
			// retries with backoff, so report and keep driving.
			fmt.Fprintf(stdout, "!! poll: %v\n", err)
		}
		res := attack.Inject("/dev/vehicle/door0", vehicle.IoctlDoorUnlock, 0)
		fmt.Fprintf(stdout, "%-10s %-24v %-12s %s\n", p.T, events, stateName(), res)
		// Re-lock after successful injections so each row is independent.
		if res.Err == nil {
			v.Doors[0].Ioctl(nil, vehicle.IoctlDoorLock, 0)
		}
	}

	fmt.Fprintf(stdout, "\ndoor0 final state: %s\n", v.Doors[0].State())
	if sys != nil {
		checks, denials, eventsIn, eventsHit := sys.SACK.Stats()
		fmt.Fprintf(stdout, "SACK stats: checks=%d denials=%d events=%d/%d\n", checks, denials, eventsHit, eventsIn)
	}

	dash := ivi.Dashboard{Vehicle: v}
	if sys != nil {
		dash.SACK = sys.SACK
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, dash.Render())
	if inj != nil {
		fmt.Fprintf(stdout, "\n-- fault injector --\n%s", inj.Render())
	}
	return nil
}
