// ivisim is the IVI emulator demo binary: it boots the full stack
// (kernel, SACK, vehicle, IVI apps and services), replays a drive trace
// through the situation detection service, launches KOFFEE-style
// injection attacks at each phase, and prints a timeline of outcomes.
//
// Usage:
//
//	ivisim            run with SACK protection (independent mode)
//	ivisim -nosack    run the unprotected baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	sack "repro"
	"repro/internal/ivi"
	"repro/internal/kernel"
	"repro/internal/lsm"
	"repro/internal/sds"
	"repro/internal/trace"
	"repro/internal/vehicle"
)

const policyText = `
states {
  parking = 0
  driving = 1
  emergency = 2
}

initial parking

permissions {
  DEVICE_READ
  CONTROL_CAR_DOORS
}

state_per {
  parking:   DEVICE_READ
  driving:   DEVICE_READ
  emergency: DEVICE_READ, CONTROL_CAR_DOORS
}

per_rules {
  DEVICE_READ {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
    allow read,write,ioctl /dev/vehicle/window*
  }
}

transitions {
  parking -> driving on driving_started
  driving -> parking on driving_stopped
  driving -> emergency on crash_detected
  emergency -> parking on all_clear
}
`

func main() {
	nosack := flag.Bool("nosack", false, "run without SACK (vulnerable baseline)")
	flag.Parse()
	if err := run(*nosack, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point.
func run(nosack bool, stdout io.Writer) error {
	var (
		k   *kernel.Kernel
		v   *vehicle.Vehicle
		sys *sack.System
	)
	if nosack {
		k = kernel.New()
		if err := k.RegisterLSM(lsm.NewCapability()); err != nil {
			return err
		}
		v = vehicle.New(4, 4)
		if err := v.RegisterDevices(k); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "== ivisim (UNPROTECTED baseline) ==")
	} else {
		var err error
		sys, err = sack.NewSystem(sack.Options{Mode: sack.Independent, PolicyText: policyText})
		if err != nil {
			return err
		}
		k, v = sys.Kernel, sys.Vehicle
		fmt.Fprintln(stdout, "== ivisim (SACK protected) ==")
	}
	fmt.Fprintf(stdout, "LSM stack: %s\n\n", k.LSM)

	// IVI layer: door service + a radio app without door permissions.
	iviSys := ivi.NewSystem(k, v)
	if _, err := iviSys.NewDoorService(); err != nil {
		return err
	}
	radio, err := iviSys.InstallApp("radio", ivi.PermAudioControl)
	if err != nil {
		return err
	}
	attack := ivi.KoffeeAttack{App: radio}

	// SDS wiring (only meaningful with SACK; harmless without).
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	var service *sds.Service
	if sys != nil {
		service, err = sys.NewSDS(k.Init(), clock,
			sds.DrivingDetector(), sds.CrashDetector(8.0), sds.AllClearDetector(8.0))
		if err != nil {
			return err
		}
	} else {
		service = sds.NewService(clock, sds.VehicleSensors(v.Dynamics),
			[]sds.Detector{sds.DrivingDetector(), sds.CrashDetector(8.0)},
			sds.TransmitterFunc(func([]string) error { return nil }))
	}

	stateName := func() string {
		if sys == nil {
			return "n/a"
		}
		return sys.CurrentState().Name
	}

	fmt.Fprintf(stdout, "%-10s %-24s %-12s %s\n", "time", "events", "state", "attack outcome")
	var prev time.Duration
	for _, p := range trace.CityDriveWithCrash().Points {
		if p.T > prev {
			clock.Advance(p.T - prev)
			prev = p.T
		}
		trace.Apply(p, v.Dynamics)
		events, err := service.Poll()
		if err != nil {
			return err
		}
		res := attack.Inject("/dev/vehicle/door0", vehicle.IoctlDoorUnlock, 0)
		fmt.Fprintf(stdout, "%-10s %-24v %-12s %s\n", p.T, events, stateName(), res)
		// Re-lock after successful injections so each row is independent.
		if res.Err == nil {
			v.Doors[0].Ioctl(nil, vehicle.IoctlDoorLock, 0)
		}
	}

	fmt.Fprintf(stdout, "\ndoor0 final state: %s\n", v.Doors[0].State())
	if sys != nil {
		checks, denials, eventsIn, eventsHit := sys.SACK.Stats()
		fmt.Fprintf(stdout, "SACK stats: checks=%d denials=%d events=%d/%d\n", checks, denials, eventsHit, eventsIn)
	}

	dash := ivi.Dashboard{Vehicle: v}
	if sys != nil {
		dash.SACK = sys.SACK
	}
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, dash.Render())
	return nil
}
