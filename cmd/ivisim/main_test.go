package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunProtected(t *testing.T) {
	var out bytes.Buffer
	if err := run(false, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, frag := range []string{
		"SACK protected",
		"LSM stack: sack,capability",
		"BLOCKED",  // normal/driving injections die
		"INJECTED", // emergency break-glass lets them through
		"door0 final state: locked",
		"IVI STATUS",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("output missing %q:\n%s", frag, text)
		}
	}
	// The pre-crash phase must contain no successful injection.
	preCrash := text[:strings.Index(text, "crash_detected")]
	if strings.Contains(preCrash, "INJECTED") {
		t.Errorf("injection succeeded before the crash:\n%s", preCrash)
	}
}

func TestRunUnprotected(t *testing.T) {
	var out bytes.Buffer
	if err := run(true, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "UNPROTECTED") {
		t.Errorf("banner missing:\n%s", text)
	}
	if strings.Contains(text, "BLOCKED") {
		t.Errorf("unprotected run blocked something:\n%s", text)
	}
	if !strings.Contains(text, "(no SACK)") {
		t.Errorf("dashboard should show no SACK:\n%s", text)
	}
}
