package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunProtected(t *testing.T) {
	var out bytes.Buffer
	if err := run(false, "", 1, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, frag := range []string{
		"SACK protected",
		"LSM stack: sack,capability",
		"BLOCKED",  // normal/driving injections die
		"INJECTED", // emergency break-glass lets them through
		"door0 final state: locked",
		"IVI STATUS",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("output missing %q:\n%s", frag, text)
		}
	}
	// The pre-crash phase must contain no successful injection.
	preCrash := text[:strings.Index(text, "crash_detected")]
	if strings.Contains(preCrash, "INJECTED") {
		t.Errorf("injection succeeded before the crash:\n%s", preCrash)
	}
}

func TestRunUnprotected(t *testing.T) {
	var out bytes.Buffer
	if err := run(true, "", 1, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "UNPROTECTED") {
		t.Errorf("banner missing:\n%s", text)
	}
	if strings.Contains(text, "BLOCKED") {
		t.Errorf("unprotected run blocked something:\n%s", text)
	}
	if !strings.Contains(text, "(no SACK)") {
		t.Errorf("dashboard should show no SACK:\n%s", text)
	}
}

// TestRunWithCANFaults smoke-tests the -faults flag: a plan dropping
// every CAN frame reaches the vehicle bus tap (the tally shows canbus
// drops) and the run still completes.
func TestRunWithCANFaults(t *testing.T) {
	var out bytes.Buffer
	if err := run(false, "drop:canbus", 1, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "-- fault injector --") {
		t.Fatalf("fault tally missing:\n%s", text)
	}
	tally := text[strings.Index(text, "-- fault injector --"):]
	if !strings.Contains(tally, "canbus") || !strings.Contains(tally, "drops=") {
		t.Fatalf("canbus drops not tallied:\n%s", tally)
	}
	// Every bus op was faulted: drops must equal ops for the target.
	for _, line := range strings.Split(tally, "\n") {
		if !strings.Contains(line, "fault canbus") {
			continue
		}
		if strings.Contains(line, "drops=0 ") {
			t.Fatalf("canbus rule never fired: %s", line)
		}
	}

	// The baseline wires the tap by hand; same tally expected.
	out.Reset()
	if err := run(true, "drop:canbus", 1, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fault canbus") {
		t.Fatalf("baseline canbus tally missing:\n%s", out.String())
	}

	// A malformed spec is a startup error, not a silent no-op.
	if err := run(false, "explode:canbus", 1, &out); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}
