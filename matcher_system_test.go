package sack_test

// matcher_system_test proves the PR 6 engine-equivalence and performance
// contracts at the system level, through the public API only:
//
//   - a system on the trie-compiled matcher and a system on the legacy
//     glob walk produce identical decisions for every query, across
//     situation transitions and policy reloads;
//   - the AVC changes latency, never verdicts: a cached system and an
//     uncached system emit byte-identical allow/deny traces;
//   - an uncached covered check on the trie engine allocates nothing;
//   - the trie engine beats the walk engine by a wide margin on the
//     deep-bucket workload the matcher was built for (the `make
//     bench-smoke` regression guard).

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	sack "repro"
	"repro/internal/bench"
	"repro/internal/sys"
)

const matcherDiffPolicy = `
states {
  normal = 0
  emergency = 1
}
initial normal
permissions {
  BASE
  EMERGENCY
}
state_per {
  normal:    BASE
  emergency: BASE, EMERGENCY
}
per_rules {
  BASE {
    allow read /etc/vehicle/**
    allow read,write /var/sack/area*/data?
    deny write /etc/vehicle/immutable.conf
    allow read,write /srv/{cfg,log}/**
    allow read /usr/lib/sack/*.so subject /usr/bin/*
  }
  EMERGENCY {
    allow read,write,ioctl /dev/vehicle/door*
    allow ioctl /dev/vehicle/window* subject /usr/bin/rescued
    deny ioctl /dev/vehicle/door13
  }
}
transitions {
  normal -> emergency on crash_detected
  emergency -> normal on all_clear
}
`

var matcherDiffPaths = []string{
	"/etc/vehicle/speed.conf", "/etc/vehicle/immutable.conf", "/etc/vehicle/",
	"/etc/vehicle", "/etc/other", "/var/sack/area0/data1", "/var/sack/area0/data10",
	"/srv/cfg/a/b", "/srv/log/x", "/srv/tmp/x", "/usr/lib/sack/ivi.so",
	"/usr/lib/sack/nested/x.so", "/dev/vehicle/door0", "/dev/vehicle/door13",
	"/dev/vehicle/window2", "/tmp/unrelated", "pipe:[42]", "/",
}

var matcherDiffSubjects = []string{"", "/usr/bin/ivi", "/usr/bin/rescued", "/sbin/sds"}

var matcherDiffMasks = []sack.Access{
	sack.MayRead, sack.MayWrite, sack.MayIoctl,
	sack.MayRead | sack.MayWrite, sack.MayCreate,
}

// TestMatcherSystemDifferential holds a trie-engine system and a
// walk-engine system to identical decisions over every (subject, path,
// mask) combination, in every situation state, before and after a
// policy reload.
func TestMatcherSystemDifferential(t *testing.T) {
	trie, err := sack.New(matcherDiffPolicy, sack.WithoutVehicle())
	if err != nil {
		t.Fatal(err)
	}
	walk, err := sack.New(matcherDiffPolicy, sack.WithoutVehicle(), sack.WithoutMatcher())
	if err != nil {
		t.Fatal(err)
	}

	compare := func(phase string) {
		t.Helper()
		for _, subject := range matcherDiffSubjects {
			for _, path := range matcherDiffPaths {
				for _, mask := range matcherDiffMasks {
					dt, err := trie.Check(subject, path, mask)
					if err != nil {
						t.Fatal(err)
					}
					dw, err := walk.Check(subject, path, mask)
					if err != nil {
						t.Fatal(err)
					}
					if dt.Allowed != dw.Allowed || dt.Covered != dw.Covered ||
						ruleText(dt) != ruleText(dw) {
						t.Fatalf("%s: divergence on subject=%q path=%q mask=%s:\n  trie: %+v\n  walk: %+v",
							phase, subject, path, mask, dt, dw)
					}
				}
			}
		}
	}

	compare("normal")
	for _, s := range []*sack.System{trie, walk} {
		if err := s.Events().DeliverEvent("crash_detected"); err != nil {
			t.Fatal(err)
		}
	}
	compare("emergency")

	// Reload both sides with a generated 300-rule policy: the published
	// snapshots swap engines' inputs and the equivalence must survive.
	gen := bench.GenRulesPolicy(300)
	if _, err := trie.Reload(gen); err != nil {
		t.Fatal(err)
	}
	if _, err := walk.Reload(gen); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		path := fmt.Sprintf("/srv/sack/area%d/file%d.dat", r.Intn(20), r.Intn(400))
		mask := matcherDiffMasks[r.Intn(len(matcherDiffMasks))]
		dt, err := trie.Check("", path, mask)
		if err != nil {
			t.Fatal(err)
		}
		dw, err := walk.Check("", path, mask)
		if err != nil {
			t.Fatal(err)
		}
		if dt.Allowed != dw.Allowed || dt.Covered != dw.Covered || ruleText(dt) != ruleText(dw) {
			t.Fatalf("post-reload divergence on path=%q mask=%s:\n  trie: %+v\n  walk: %+v",
				path, mask, dt, dw)
		}
	}
}

func ruleText(d sack.Decision) string {
	if d.Rule == nil {
		return ""
	}
	return d.Rule.String()
}

// TestCachedEqualsUncachedTrace drives the same access trace through a
// cached and an uncached system and demands byte-identical allow/deny
// sequences — the AVC (like the matcher) may only change latency, never
// verdicts.
func TestCachedEqualsUncachedTrace(t *testing.T) {
	cached, err := bench.BootIndependentSACK(matcherDiffPolicy)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := bench.BootIndependentSACKNoAVC(matcherDiffPolicy)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	masks := []sys.Access{sys.MayRead, sys.MayWrite, sys.MayIoctl}
	cred := sys.NewCred(1000, 1000)
	cred.SetBlob("sack", "/usr/bin/ivi")
	for trial := 0; trial < 4000; trial++ {
		path := matcherDiffPaths[r.Intn(len(matcherDiffPaths))]
		mask := masks[r.Intn(len(masks))]
		errC := cached.SACK.InodePermission(cred, path, nil, mask)
		errU := uncached.SACK.InodePermission(cred, path, nil, mask)
		if (errC == nil) != (errU == nil) {
			t.Fatalf("trial %d: cached=%v uncached=%v on path=%q mask=%s",
				trial, errC, errU, path, mask)
		}
		// Transition both mid-trace so cached entries are invalidated and
		// the property holds across epochs, not just within one.
		if trial%500 == 499 {
			ev := []string{"crash_detected", "all_clear"}[(trial/500)%2]
			cached.SACK.DeliverEvent(sack.Event(ev))
			uncached.SACK.DeliverEvent(sack.Event(ev))
		}
	}
	if st := cached.SACK.AVCStats(); st.Hits == 0 {
		t.Fatalf("trace never hit the cache: %+v", st)
	}
}

// TestMatcherZeroAllocUncached: an uncached covered decision on the trie
// engine performs zero heap allocations — the property that makes the
// sub-microsecond uncached verdict sustainable under load.
func TestMatcherZeroAllocUncached(t *testing.T) {
	tb, err := bench.BootIndependentSACKNoAVC(bench.GenRulesPolicy(500))
	if err != nil {
		t.Fatal(err)
	}
	cred := sys.NewCred(1000, 1000)
	cred.SetBlob("sack", "/usr/bin/bench-task")
	const covered = "/srv/sack/area0/file0.dat"
	if err := tb.SACK.InodePermission(cred, covered, nil, sys.MayRead); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := tb.SACK.InodePermission(cred, covered, nil, sys.MayRead); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("uncached covered check allocates %.1f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := tb.SACK.InodePermission(cred, "/tmp/unrelated.dat", nil, sys.MayRead); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("uncovered passthrough allocates %.1f objects/op, want 0", avg)
	}
}

// TestUncachedLatencyGuard is the bench-smoke regression fence: on the
// 500-rule deep-bucket workload, an uncached trie verdict must be at
// least 4x faster than the glob walk and stay under a generous absolute
// ceiling. (The measured gap is far larger — see EXPERIMENTS.md — the
// slack only absorbs CI noise.)
func TestUncachedLatencyGuard(t *testing.T) {
	polText := bench.GenRulesPolicy(500)
	const path = "/srv/sack/area0/file0.dat"

	measure := func(opts bench.IndependentOptions) time.Duration {
		tb, err := bench.BootIndependentSACKWith(polText, opts)
		if err != nil {
			t.Fatal(err)
		}
		cred := sys.NewCred(1000, 1000)
		cred.SetBlob("sack", "/usr/bin/bench-task")
		if err := tb.SACK.InodePermission(cred, path, nil, sys.MayRead); err != nil {
			t.Fatal(err)
		}
		best := time.Duration(1 << 62)
		const rounds, iters = 5, 2000
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := tb.SACK.InodePermission(cred, path, nil, sys.MayRead); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(start) / iters; d < best {
				best = d
			}
		}
		return best
	}

	trie := measure(bench.IndependentOptions{DisableAVC: true})
	walk := measure(bench.IndependentOptions{DisableAVC: true, DisableMatcher: true})
	t.Logf("uncached verdict: trie=%v walk=%v (%.1fx)", trie, walk, float64(walk)/float64(trie))

	if trie > 10*time.Microsecond {
		t.Errorf("uncached trie verdict took %v, budget 10µs", trie)
	}
	if walk < 4*trie {
		t.Errorf("trie (%v) not ≥4x faster than walk (%v)", trie, walk)
	}
}
