package sack_test

// scenario_test walks one simulated day through the Fig. 2 four-state
// policy: park with driver, drive to work, park and leave, return,
// highway drive ending in a crash, rescue, and recovery — asserting the
// kernel-enforced permission surface at every phase.

import (
	"testing"
	"time"

	sack "repro"
	"repro/internal/ivi"
	"repro/internal/sds"
	"repro/internal/trace"
	"repro/internal/vehicle"
	"repro/policies"
)

// phase applies a dynamics point and polls the SDS.
type scenarioRig struct {
	t       *testing.T
	sys     *sack.System
	clock   *sds.VirtualClock
	service *sack.SDS
	now     time.Duration
}

func newScenarioRig(t *testing.T) *scenarioRig {
	sys, err := sack.New(policies.MustLoad("fig2-four-states"))
	if err != nil {
		t.Fatal(err)
	}
	clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
	service, err := sys.NewSDS(sys.Kernel.Init(), clock,
		sds.DrivingDetector(),
		sds.ParkingDetector(),
		sds.CrashDetector(8.0),
		sds.AllClearDetector(8.0),
	)
	if err != nil {
		t.Fatal(err)
	}
	return &scenarioRig{t: t, sys: sys, clock: clock, service: service}
}

func (r *scenarioRig) advance(d time.Duration, p trace.Point) {
	r.t.Helper()
	r.now += d
	r.clock.Advance(d)
	trace.Apply(p, r.sys.Vehicle.Dynamics)
	if _, err := r.service.Poll(); err != nil {
		r.t.Fatalf("poll at %v: %v", r.now, err)
	}
}

func (r *scenarioRig) mustState(want string) {
	r.t.Helper()
	if got := r.sys.CurrentState().Name; got != want {
		r.t.Fatalf("at %v: state = %q, want %q", r.now, got, want)
	}
}

// doorControl probes door ioctl as root.
func (r *scenarioRig) doorControl() error {
	r.t.Helper()
	task := r.sys.Kernel.Init()
	fd, err := task.Open("/dev/vehicle/door0", sack.ORdonly, 0)
	if err != nil {
		return err
	}
	defer task.Close(fd)
	_, err = task.Ioctl(fd, vehicle.IoctlDoorStatus, 0)
	return err
}

// audioControl probes full-range volume ioctl.
func (r *scenarioRig) audioControl() error {
	r.t.Helper()
	task := r.sys.Kernel.Init()
	fd, err := task.Open("/dev/vehicle/audio0", sack.ORdonly, 0)
	if err != nil {
		return err
	}
	defer task.Close(fd)
	_, err = task.Ioctl(fd, vehicle.IoctlAudioSetVolume, 80)
	return err
}

func TestFullDayScenario(t *testing.T) {
	r := newScenarioRig(t)
	sec := time.Second

	// 07:30 — parked at home, driver inside. Doors and audio available.
	r.advance(0, trace.Point{Speed: 0, Driver: true, Ignition: false})
	r.mustState("parking_with_driver")
	if err := r.doorControl(); err != nil {
		t.Fatalf("parked door control: %v", err)
	}
	if err := r.audioControl(); err != nil {
		t.Fatalf("parked audio: %v", err)
	}

	// 07:35 — driving to work: door control and max volume revoked.
	r.advance(5*sec, trace.Point{Speed: 5, Driver: true, Ignition: true})
	r.mustState("driving")
	r.advance(10*sec, trace.Point{Speed: 50, Driver: true, Ignition: true})
	if err := r.doorControl(); !sack.IsErrno(err, sack.EACCES) {
		t.Fatalf("driving door control: %v", err)
	}
	if err := r.audioControl(); !sack.IsErrno(err, sack.EACCES) {
		t.Fatalf("driving audio: %v", err)
	}

	// 08:00 — park at the office and leave: almost everything locked.
	r.advance(25*sec, trace.Point{Speed: 0, Driver: true, Ignition: true})
	r.mustState("parking_with_driver")
	r.advance(5*sec, trace.Point{Speed: 0, Driver: true, Ignition: false})
	r.advance(5*sec, trace.Point{Speed: 0, Driver: false, Ignition: false})
	r.mustState("parking_without_driver")
	if err := r.doorControl(); !sack.IsErrno(err, sack.EACCES) {
		t.Fatalf("unattended door control: %v", err)
	}
	// Reading device state stays possible (DEVICE_READ in every state).
	if _, err := r.sys.Kernel.Init().ReadFileAll("/dev/vehicle/engine0"); err != nil {
		t.Fatalf("unattended engine read: %v", err)
	}

	// 17:00 — driver returns, highway home, crash.
	r.advance(5*sec, trace.Point{Speed: 0, Driver: true, Ignition: false})
	r.mustState("parking_with_driver")
	r.advance(5*sec, trace.Point{Speed: 30, Driver: true, Ignition: true})
	r.mustState("driving")
	r.advance(20*sec, trace.Point{Speed: 120, Driver: true, Ignition: true})
	r.advance(5*sec, trace.Point{Speed: 15, AccelG: 9.5, Driver: true, Ignition: true})
	r.mustState("emergency")

	// Break-glass semantics now in force: doors controllable for rescue.
	if err := r.doorControl(); err != nil {
		t.Fatalf("emergency door control: %v", err)
	}
	// But not everything comes back: audio stays locked in emergencies.
	if err := r.audioControl(); !sack.IsErrno(err, sack.EACCES) {
		t.Fatalf("emergency audio: %v", err)
	}

	// A malicious app still cannot act outside the granted surface: CAN
	// injection of a window command is blocked even in the emergency.
	iviSys := ivi.NewSystem(r.sys.Kernel, r.sys.Vehicle)
	mal, err := iviSys.InstallApp("malware")
	if err != nil {
		t.Fatal(err)
	}
	attack := ivi.KoffeeAttack{App: mal}
	frame := vehicle.Frame{ID: vehicle.CANIDWindowCmd, Len: 2}
	frame.Data[0] = 0
	frame.Data[1] = 100
	if res := attack.InjectCANFrame(frame); !res.Blocked {
		t.Fatalf("emergency CAN injection not blocked: %+v", res)
	}

	// 17:40 — vehicle at rest, ignition cycled: recovery to parking.
	r.advance(30*sec, trace.Point{Speed: 0, AccelG: 0, Driver: true, Ignition: true})
	r.advance(5*sec, trace.Point{Speed: 0, Driver: true, Ignition: false})
	r.advance(5*sec, trace.Point{Speed: 0, Driver: true, Ignition: true})
	r.mustState("parking_with_driver")
	if err := r.doorControl(); err != nil {
		t.Fatalf("post-recovery door control: %v", err)
	}

	// The whole day is on the books.
	transitions, _ := r.sys.SACK.Machine().Stats()
	if transitions < 7 {
		t.Fatalf("only %d transitions over the scenario", transitions)
	}
	if len(r.sys.Audit.Denials()) == 0 {
		t.Fatal("no denials audited over the scenario")
	}
}
