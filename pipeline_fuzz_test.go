package sack_test

// pipeline_fuzz_test drives randomly generated traces through the whole
// stack — sensors, SDS detectors, SACKfs, SSM, APE, enforcement — and
// checks after every step that the kernel's decisions agree with the
// situation state the trace implies. Failures replay deterministically
// from the seed.

import (
	"fmt"
	"testing"
	"time"

	sack "repro"
	"repro/internal/ivi"
	"repro/internal/sds"
	"repro/internal/trace"
	"repro/internal/vehicle"
)

const fuzzPolicy = `
states {
  parked = 0
  driving = 1
  emergency = 2
}

initial parked

permissions {
  DEVICE_READ
  CONTROL_CAR_DOORS
}

state_per {
  parked:    DEVICE_READ, CONTROL_CAR_DOORS
  driving:   DEVICE_READ
  emergency: DEVICE_READ, CONTROL_CAR_DOORS
}

per_rules {
  DEVICE_READ {
    allow read /dev/vehicle/**
  }
  CONTROL_CAR_DOORS {
    allow read,write,ioctl /dev/vehicle/door*
  }
}

transitions {
  parked -> driving on driving_started
  driving -> parked on driving_stopped
  driving -> emergency on crash_detected
  emergency -> parked on all_clear
}
`

func TestPipelineFuzzRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sys, err := sack.New(fuzzPolicy)
			if err != nil {
				t.Fatal(err)
			}
			root := sys.Kernel.Init()
			clock := sds.NewVirtualClock(time.Unix(1_700_000_000, 0))
			service, err := sys.NewSDS(root, clock,
				sds.DrivingDetector(),
				sds.CrashDetector(8.0),
				sds.AllClearDetector(8.0),
			)
			if err != nil {
				t.Fatal(err)
			}
			dash := &ivi.Dashboard{Vehicle: sys.Vehicle, SACK: sys.SACK}

			tr := trace.NewGenerator(seed).Generate(120)
			var prev time.Duration
			for step, p := range tr.Points {
				if p.T > prev {
					clock.Advance(p.T - prev)
					prev = p.T
				}
				trace.Apply(p, sys.Vehicle.Dynamics)
				if _, err := service.Poll(); err != nil {
					t.Fatalf("seed %d step %d: poll: %v", seed, step, err)
				}

				// Invariant: door control permission exactly matches the
				// situation state SACK holds.
				state := sys.CurrentState().Name
				wantAllowed := state == "parked" || state == "emergency"
				fd, err := root.Open("/dev/vehicle/door0", sack.ORdonly, 0)
				if err != nil {
					t.Fatalf("seed %d step %d: read-open door: %v", seed, step, err)
				}
				_, ioctlErr := root.Ioctl(fd, vehicle.IoctlDoorStatus, 0)
				root.Close(fd)
				gotAllowed := ioctlErr == nil
				if gotAllowed != wantAllowed {
					t.Fatalf("seed %d step %d: state=%s speed=%.1f allowed=%v want=%v (err=%v)",
						seed, step, state, p.Speed, gotAllowed, wantAllowed, ioctlErr)
				}

				// The dashboard must always render.
				if out := dash.Render(); len(out) == 0 {
					t.Fatal("empty dashboard")
				}
			}

			// Accounting invariant: every SSM transition came from a
			// delivered event.
			transitions, ignored := sys.SACK.Machine().Stats()
			_, _, eventsIn, eventsHit := sys.SACK.Stats()
			if eventsHit != transitions || eventsIn != transitions+ignored {
				t.Fatalf("seed %d: event accounting: in=%d hit=%d trans=%d ignored=%d",
					seed, eventsIn, eventsHit, transitions, ignored)
			}
		})
	}
}

func TestGeneratedTracesAreWellFormed(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		tr := trace.NewGenerator(seed).Generate(200)
		if len(tr.Points) != 200 {
			t.Fatalf("seed %d: %d points", seed, len(tr.Points))
		}
		for i, p := range tr.Points {
			if p.Speed < 0 || p.Speed > 130 {
				t.Fatalf("seed %d point %d: speed %v out of range", seed, i, p.Speed)
			}
			if p.AccelG < 0 {
				t.Fatalf("seed %d point %d: negative accel", seed, i)
			}
			if i > 0 && p.T <= tr.Points[i-1].T {
				t.Fatalf("seed %d point %d: time not increasing", seed, i)
			}
		}
	}
	// Determinism: same seed, same trace.
	a := trace.NewGenerator(7).Generate(100)
	b := trace.NewGenerator(7).Generate(100)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatal("generator is not deterministic per seed")
		}
	}
}
